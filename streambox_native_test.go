package streambox_test

import (
	"testing"

	streambox "streambox"
	"streambox/internal/wm"
)

// quickstartPipeline builds the paper's Listing 1 shape — KV source,
// 1-second windows, sum per key — with a deterministic seed, returning
// the pipeline and its capture.
func quickstartPipeline(keys uint64, seed int64) (*streambox.Pipeline, *streambox.Captured) {
	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	res := p.Source(streambox.KV(streambox.KVConfig{Keys: keys, ValueRange: 1000, Seed: seed}), smallSource(2e6)).
		Window(2).
		SumPerKey(0, 1).
		Capture()
	return p, res
}

// capturedByWindow indexes captured rows as window → key → value.
func capturedByWindow(c *streambox.Captured) map[wm.Time]map[uint64]uint64 {
	out := make(map[wm.Time]map[uint64]uint64)
	for _, r := range c.Rows {
		m := out[r.Win]
		if m == nil {
			m = make(map[uint64]uint64)
			out[r.Win] = m
		}
		m[r.Key] = r.Val
	}
	return out
}

// TestBackendEquivalence runs the quickstart pipeline on the simulated
// and the native backend with the same seed and asserts that every
// window closed by both backends carries identical grouped/reduced
// results. Both backends generate the identical record stream (same
// bundle sizes and event-time arithmetic), so per-window aggregates
// must match exactly; the backends may close a different number of
// trailing windows because the simulator paces ingest in virtual time.
func TestBackendEquivalence(t *testing.T) {
	const seed = 7
	simP, simRes := quickstartPipeline(64, seed)
	simRep, err := streambox.Run(simP, streambox.RunConfig{Duration: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	natP, natRes := quickstartPipeline(64, seed)
	natRep, err := streambox.Run(natP, streambox.RunConfig{
		Backend:  streambox.Native,
		Duration: 0.02,
		Workers:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if simRep.Backend != streambox.Simulated || natRep.Backend != streambox.Native {
		t.Fatalf("backend labels wrong: %v / %v", simRep.Backend, natRep.Backend)
	}
	sim := capturedByWindow(simRes)
	nat := capturedByWindow(natRes)
	common := 0
	for win, simKeys := range sim {
		natKeys, ok := nat[win]
		if !ok {
			continue
		}
		common++
		if len(simKeys) != len(natKeys) {
			t.Fatalf("window %d: simulated %d keys, native %d keys", win, len(simKeys), len(natKeys))
		}
		for k, v := range simKeys {
			if nv, ok := natKeys[k]; !ok || nv != v {
				t.Fatalf("window %d key %d: simulated sum %d, native sum %d (present=%v)", win, k, v, nv, ok)
			}
		}
	}
	if common < 3 {
		t.Fatalf("only %d common windows (sim %d, native %d); equivalence needs >= 3",
			common, len(sim), len(nat))
	}
}

// TestNativeBackendPublicAPI runs the deterministic round-robin stream
// natively through the public API and checks exact sums plus the
// native-specific report fields.
func TestNativeBackendPublicAPI(t *testing.T) {
	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	res := p.Source(streambox.RoundRobinKV(8, 1), smallSource(2e6)).
		Window(2).
		SumPerKey(0, 1).
		Capture()
	rep, err := streambox.Run(p, streambox.RunConfig{Backend: streambox.Native, Duration: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if rep.IngestedRecords != 40_000 {
		t.Fatalf("ingested %d, want 40000", rep.IngestedRecords)
	}
	if rep.WindowsClosed != 10 {
		t.Fatalf("closed %d windows, want 10", rep.WindowsClosed)
	}
	if rep.Throughput <= 0 || rep.WallSeconds <= 0 {
		t.Fatalf("native report must carry real throughput and wall time, got %f rec/s in %fs",
			rep.Throughput, rep.WallSeconds)
	}
	if len(res.Rows) == 0 || res.Records != int64(len(res.Rows)) {
		t.Fatalf("capture rows %d records %d", len(res.Rows), res.Records)
	}
	for _, r := range res.Rows {
		if r.Val != 4000/8 {
			t.Fatalf("sum = %d, want %d", r.Val, 4000/8)
		}
	}
}

// TestNativeBackendFilter checks filters fuse into native extraction.
func TestNativeBackendFilter(t *testing.T) {
	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	res := p.Source(streambox.RoundRobinKV(8, 1), smallSource(2e6)).
		Filter("low-keys", 0, func(v uint64) bool { return v < 4 }).
		Window(2).
		CountPerKey(0).
		Capture()
	if _, err := streambox.Run(p, streambox.RunConfig{Backend: streambox.Native, Duration: 0.01}); err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows captured")
	}
	for _, r := range res.Rows {
		if r.Key >= 4 {
			t.Fatalf("filtered key %d leaked", r.Key)
		}
	}
}

// TestNativeBackendUnsupported verifies richer graphs are rejected
// with a helpful error instead of silently degrading.
func TestNativeBackendUnsupported(t *testing.T) {
	// Join: two sources.
	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	l := p.Source(streambox.RoundRobinKV(4, 1), smallSource(1e6)).Window(2)
	r := p.Source(streambox.RoundRobinKV(4, 2), smallSource(1e6)).Window(2)
	l.Join(r, 0, 1).Capture()
	if _, err := streambox.Run(p, streambox.RunConfig{Backend: streambox.Native, Duration: 0.01}); err == nil {
		t.Fatal("two-source join must be rejected natively")
	}

	// Missing Window before aggregation.
	p2 := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	p2.Source(streambox.RoundRobinKV(4, 1), smallSource(1e6)).SumPerKey(0, 1).Capture()
	if _, err := streambox.Run(p2, streambox.RunConfig{Backend: streambox.Native, Duration: 0.01}); err == nil {
		t.Fatal("aggregation without Window must be rejected natively")
	}

	// PowerGrid composite is not in the native path.
	p3 := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	p3.Source(streambox.PowerGridSource(streambox.PowerGridConfig{Seed: 1}), smallSource(1e6)).
		Window(2).
		PowerGrid().
		Capture()
	if _, err := streambox.Run(p3, streambox.RunConfig{Backend: streambox.Native, Duration: 0.01}); err == nil {
		t.Fatal("PowerGrid composite must be rejected natively")
	}

	// The same pipeline runs fine on the simulated backend.
	if _, err := streambox.Run(p3, streambox.RunConfig{Duration: 0.01}); err != nil {
		t.Fatalf("simulated fallback failed: %v", err)
	}
}

// TestNativeBackendAggFamily covers the keyed-aggregation family on
// the native backend end to end.
func TestNativeBackendAggFamily(t *testing.T) {
	type c struct {
		name  string
		build func(streambox.Stream) *streambox.Captured
		want  uint64
	}
	cases := []c{
		{"sum", func(s streambox.Stream) *streambox.Captured { return s.SumPerKey(0, 1).Capture() }, 7 * 500},
		{"count", func(s streambox.Stream) *streambox.Captured { return s.CountPerKey(0).Capture() }, 500},
		{"avg", func(s streambox.Stream) *streambox.Captured { return s.AvgPerKey(0, 1).Capture() }, 7},
		{"median", func(s streambox.Stream) *streambox.Captured { return s.MedianPerKey(0, 1).Capture() }, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
			res := tc.build(p.Source(streambox.RoundRobinKV(8, 7), smallSource(2e6)).Window(2))
			if _, err := streambox.Run(p, streambox.RunConfig{Backend: streambox.Native, Duration: 0.01}); err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, r := range res.Rows {
				if r.Val != tc.want {
					t.Fatalf("%s = %d, want %d", tc.name, r.Val, tc.want)
				}
			}
		})
	}
}
