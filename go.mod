module streambox

go 1.24
