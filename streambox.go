// Package streambox is a Go reproduction of StreamBox-HBM (ASPLOS '19):
// a stream analytics engine for hybrid high-bandwidth memories. Users
// declare pipelines of grouping and reduction operators (the Apache
// Beam style of the paper's Listing 1); the runtime executes them over
// a simulated KNL-class hybrid memory, extracting Key Pointer Arrays
// into HBM, grouping with sequential-access merge-sort, and balancing
// HBM capacity against DRAM bandwidth with a demand-balance knob.
//
// A minimal pipeline (compare the paper's Listing 1):
//
//	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
//	results := p.Source(streambox.KV(streambox.KVConfig{Keys: 1024}),
//	        streambox.DefaultSource(20_000_000)).
//	    SumPerKey(0, 1).
//	    Capture()
//	report, err := streambox.Run(p, streambox.RunConfig{Cores: 64, Duration: 2})
package streambox

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"streambox/internal/algo"
	"streambox/internal/engine"
	"streambox/internal/faultinject"
	"streambox/internal/ingress"
	"streambox/internal/kpa"
	"streambox/internal/memsim"
	"streambox/internal/netio"
	"streambox/internal/ops"
	"streambox/internal/runtime"
	"streambox/internal/wal"
	"streambox/internal/wm"
)

// EventTime is a stream timestamp in event-time ticks.
type EventTime = wm.Time

// Second is one second of event time in ticks (the generators emit
// WindowRecords records per window of event time, so only ratios
// matter; one million ticks per second keeps numbers readable).
const Second EventTime = 1_000_000

// WindowSpec declares the pipeline's temporal windowing.
type WindowSpec struct{ w wm.Windowing }

// FixedWindow declares tumbling windows of the given size.
func FixedWindow(size EventTime) WindowSpec { return WindowSpec{wm.Fixed(size)} }

// SlidingWindow declares sliding windows.
func SlidingWindow(size, slide EventTime) WindowSpec { return WindowSpec{wm.Sliding(size, slide)} }

// Generator produces stream records; see KV, YSB and PowerGridSource
// for built-ins, or implement engine.Generator semantics via custom
// code in this module.
type Generator = engine.Generator

// SourceConfig configures one ingress stream: offered rate, bundle
// size, event-time density and watermark cadence.
type SourceConfig = engine.SourceConfig

// DefaultSource returns a sensible source at the given offered rate
// (records/second): 10k-record bundles, 1M records per window of event
// time, a watermark per window.
func DefaultSource(rate float64) SourceConfig {
	return SourceConfig{
		Name:           "source",
		Rate:           rate,
		BundleRecords:  10_000,
		WindowRecords:  1_000_000,
		WatermarkEvery: 100,
	}
}

// KVConfig configures the synthetic key/value stream.
type KVConfig = ingress.KVConfig

// KV returns the random key/value generator (benchmarks 1–8).
func KV(cfg KVConfig) Generator { return ingress.NewKV(cfg) }

// RoundRobinKV returns a deterministic key/value generator (keys cycle
// 0..keys-1 with a constant value) whose aggregates are exactly
// predictable — useful for testing pipelines.
func RoundRobinKV(keys, value uint64) Generator { return ingress.NewRoundRobinKV(keys, value) }

// YSBConfig configures the Yahoo streaming benchmark stream.
type YSBConfig = ingress.YSBConfig

// YSB returns the Yahoo streaming benchmark generator.
func YSB(cfg YSBConfig) *ingress.YSBGen { return ingress.NewYSB(cfg) }

// PowerGridConfig configures the synthetic DEBS'14-style plug stream.
type PowerGridConfig = ingress.PowerGridConfig

// PowerGridSource returns the smart-plug generator (benchmark 9).
func PowerGridSource(cfg PowerGridConfig) Generator { return ingress.NewPowerGrid(cfg) }

// Placement selects the KPA placement policy (§7.3 ablations).
type Placement = engine.Placement

// Placement policies.
const (
	// Managed is StreamBox-HBM's software placement (default).
	Managed = engine.PlacementManaged
	// DRAMOnly places every KPA in DRAM.
	DRAMOnly = engine.PlacementDRAM
	// CacheMode leaves placement to hardware caching.
	CacheMode = engine.PlacementCache
)

// Backend selects the execution engine behind Run.
type Backend int

const (
	// Simulated executes on the discrete-event hybrid-memory simulator
	// (virtual time, paper-faithful cost model). The default.
	Simulated Backend = iota
	// Native executes on real goroutines over real data: a
	// work-stealing worker pool runs ingest → KPA extraction → parallel
	// merge-sort → merge → windowed reduction, with KPA placement drawn
	// from the demand-balance knob and backpressure from pool
	// utilization. Reported throughput is real records per wall-clock
	// second. The native backend supports single-source
	// filter* → Window → <agg>PerKey pipelines; richer graphs run
	// simulated.
	Native
)

// String names the backend.
func (b Backend) String() string {
	if b == Native {
		return "native"
	}
	return "simulated"
}

// RunConfig configures one execution.
type RunConfig struct {
	// Backend selects simulated (default) or native execution.
	Backend Backend
	// Machine simulates this hardware; zero value means KNL (Table 3).
	// The native backend uses only its memory-tier capacities.
	Machine memsim.Config
	// Cores restricts the core count (0 = all of Machine's cores).
	Cores int
	// Workers is the native worker-pool size (0 = one per CPU);
	// the simulated backend ignores it.
	Workers int
	// Duration is the virtual runtime in seconds. The native backend
	// ingests Rate×Duration records per source as fast as the hardware
	// allows instead of pacing to virtual time.
	Duration float64
	// Placement selects the KPA placement policy.
	Placement Placement
	// NoKPA disables key/pointer extraction (grouping on full records).
	NoKPA bool
	// TargetDelay is the output-delay objective in seconds (default 1).
	TargetDelay float64
	// Seed drives placement randomness.
	Seed int64
	// RecordSeries captures the monitor time series in the report.
	RecordSeries bool
	// Serve configures network serving for Serve; Run ignores it.
	Serve *ServeConfig
	// SpillDir and SpillCapacity enable the native backend's mmap'd
	// cold spill tier and with it the adaptive placement controller:
	// sealed window state beyond the HBM+DRAM budget degrades to the
	// spill file instead of failing the run. SpillCapacity = 0 disables
	// both; SpillDir empty uses the system temp directory. The
	// simulated backend ignores them.
	SpillDir      string
	SpillCapacity int64
	// PinnedKnob pins the demand-balance knob to a fixed
	// {k_low, k_high} and disables the adaptive controller — the
	// fixed-setting ablation the controller is benchmarked against
	// (sbx-bench -exp adaptive). Native backend only.
	PinnedKnob *[2]float64
	// EvictHighWater/EvictLowWater bound the controller's eviction
	// hysteresis (0 picks 0.85/0.70); see runtime.Config.
	EvictHighWater float64
	EvictLowWater  float64
}

// ServeConfig configures a network-serving execution (Serve): where to
// listen for ingest traffic and for live queries.
type ServeConfig struct {
	// IngestAddr is the TCP ingest listener address, e.g. ":7077" or
	// "127.0.0.1:0" (required).
	IngestAddr string
	// HTTPAddr is the query/metrics listener address; empty disables
	// the HTTP endpoint.
	HTTPAddr string
	// KeepWindows is the number of recent closed windows retained per
	// sink for GET /windows (0 picks 16).
	KeepWindows int
	// FrameCredits is the per-connection flow-control window in frames
	// (0 picks 16).
	FrameCredits int
	// MaxFrameBytes caps one ingest frame's payload (0 picks 4 MiB).
	MaxFrameBytes int
	// WireVersion caps the negotiated ingest wire version (0 picks the
	// newest). Set 1 to serve row-format clients only; columnar dials
	// then fall back to a row format.
	WireVersion int
	// DecodeWorkers bounds concurrent row-format frame decoding across
	// all ingest connections (0 picks GOMAXPROCS).
	DecodeWorkers int
	// FeedBuffer is the decoded-batch buffer between the ingest server
	// and the runtime, in batches (0 picks 64).
	FeedBuffer int
	// IdleTimeout severs connections silent past it in steady state
	// (session cursors are then parked and expired by the grace
	// deadlines below). Zero disables the deadline.
	IdleTimeout time.Duration
	// CursorGrace is how long a disconnected session's watermark cursor
	// keeps stalling window closes before it is parked (0 picks 10s,
	// negative disables). SessionTimeout is how long the session stays
	// resumable before it is expired outright (0 picks 120s, negative
	// disables).
	CursorGrace    time.Duration
	SessionTimeout time.Duration
	// MaxConns caps concurrently served ingest connections; handshakes
	// past the cap are shed with an overloaded ack. Zero = unlimited.
	// Independently of the cap, new connections are shed while mempool
	// pressure exceeds ShedUtilization.
	MaxConns int
	// ShedUtilization is the mempool pressure (worst memory-tier
	// utilization) above which new connections are shed at the
	// handshake (0 picks runtime.ShedUtilization, 0.98).
	ShedUtilization float64
	// Faults, when non-nil, wraps accepted ingest connections with the
	// fault injector (chaos testing only).
	Faults *faultinject.Injector
	// WALDir, when non-empty, enables the write-ahead frame log in that
	// directory: every accepted session frame is persisted through a
	// group-commit fsync before its ack can advance, and periodic
	// checkpoints of the recovery metadata (session table, watermark
	// cursors, sealed result windows) land beside the segments. A clean
	// Shutdown seals everything, writes a final checkpoint and deletes
	// the segments.
	WALDir string
	// RecoverDir starts the server by recovering from an existing WAL
	// directory: the checkpoint is restored, unsealed frames are
	// replayed through the normal ingest path, resumable sessions are
	// re-armed at their durable acks, and only then does the listener
	// accept connections. Implies WALDir (logging continues into the
	// same directory). A missing or empty directory recovers to a
	// fresh state.
	RecoverDir string
	// WALSegmentBytes caps one log segment before it rolls (0 picks
	// 64 MiB); WALSyncInterval is the background fsync cadence covering
	// frames that are not holding a session ack (0 picks 5ms).
	WALSegmentBytes int64
	WALSyncInterval time.Duration
	// CheckpointInterval is the recovery-checkpoint cadence (0 picks
	// 1s). Log segments are deleted only once a durable checkpoint
	// seals every window they feed.
	CheckpointInterval time.Duration
	// ReapInterval overrides the session reaper's scan tick (see
	// netio.ServerConfig.ReapInterval); zero keeps the automatic
	// derivation from CursorGrace/SessionTimeout.
	ReapInterval time.Duration
}

// KNL returns the paper's Knights Landing machine (Table 3).
func KNL() memsim.Config { return memsim.KNLConfig() }

// X56 returns the paper's 56-core Xeon comparison machine (Table 3).
func X56() memsim.Config { return memsim.X56Config() }

// Report summarises one run.
type Report struct {
	// Backend that produced this report.
	Backend Backend
	// IngestedRecords and Throughput: records/second of virtual time on
	// the simulated backend, records/second of real wall-clock time on
	// the native backend.
	IngestedRecords int64
	Throughput      float64
	// DroppedRecords counts records decoded off the network but
	// discarded because the pipeline was draining; in-process
	// generators drop nothing, so it is 0 for generator sources.
	DroppedRecords int64
	// DecodeErrors counts network frames whose payload failed to
	// decode (0 for generator sources, whose records need no parsing);
	// ChecksumErrors separately counts columnar frames that parsed but
	// failed checksum verification.
	DecodeErrors   int64
	ChecksumErrors int64
	// Fault-tolerance counters of a network serve: sessions resumed
	// after connection loss, replayed frames discarded by dedup,
	// handshakes shed by admission control, sessions expired after their
	// clients never came back, and connections severed by the idle
	// deadline. All 0 for generator sources.
	SessionsResumed int64
	DuplicateFrames int64
	ShedConns       int64
	ExpiredSessions int64
	IdleTimeouts    int64
	// Durability counters of a WAL-enabled serve: frames appended to
	// the write-ahead log, the group-commit fsync count and p99
	// latency, and log segments still on disk vs retired by
	// checkpoints. All 0 without ServeConfig.WALDir.
	WALAppendedFrames  int64
	WALSyncs           int64
	WALFsyncP99Ns      int64
	WALSegmentsActive  int64
	WALSegmentsRetired int64
	// Recovery counters of a serve started with ServeConfig.RecoverDir:
	// resumable sessions restored from the checkpoint, frames replayed
	// from the log, and the wall-clock nanoseconds recovery took before
	// the listener opened.
	RecoveredSessions int64
	ReplayedFrames    int64
	RecoveryNs        int64
	// WallSeconds is the real elapsed time of a native run (0 when
	// simulated).
	WallSeconds float64
	// GCPauseNs is the Go garbage collector's stop-the-world pause time
	// accumulated over a native run, and AllocsPerRecord its heap
	// allocations per ingested record (both 0 when simulated). They
	// quantify what the slab-recycling mempool takes off the hot path.
	GCPauseNs       int64
	AllocsPerRecord float64
	// PaneRuns counts the sorted pane runs built by the native
	// backend's pane-based sliding aggregation, and SharedRunRefs the
	// extra window references taken on them — each sliding window
	// references the runs of the panes it covers instead of holding a
	// private copy of every record. Both 0 for fixed windows and on the
	// simulated backend.
	PaneRuns, SharedRunRefs int64
	// PeakWindowStateBytes is the native backend's high-water mark of
	// live grouped window state per memory tier (0 HBM, 1 DRAM), and
	// PeakWindowStateTotalBytes the combined high-water mark (the
	// per-tier marks are independent maxima and may sum higher). Pane
	// sharing keeps the sliding-window figures ~Size/Slide× below what
	// per-window duplication holds. Index 2 is the mmap'd spill tier,
	// nonzero only when RunConfig.SpillCapacity enabled it.
	PeakWindowStateBytes      [3]int64
	PeakWindowStateTotalBytes int64
	// Degradation-ladder figures of a native run with the spill tier
	// enabled (all 0 otherwise): sealed runs and bytes evicted to the
	// mmap'd spill file, loads bringing them back at window close, the
	// adaptive placement controller's knob adjustments, and the
	// 99th-percentile window close latency.
	SpilledRuns   int64
	SpilledBytes  int64
	SpillLoads    int64
	CtrlDecisions int64
	CloseP99Ns    int64
	// EmittedRecords counts result records at sinks.
	EmittedRecords int64
	// WindowsClosed and output delays (virtual seconds).
	WindowsClosed int
	AvgDelay      float64
	MaxDelay      float64
	// PeakHBMBW / PeakDRAMBW are peak bandwidths in bytes/second.
	PeakHBMBW  float64
	PeakDRAMBW float64
	// Series is the monitor time series when requested.
	Series []engine.Sample
}

// Pipeline is a declarative operator graph, built with Stream methods
// and executed by Run.
type Pipeline struct {
	win     WindowSpec
	sources []sourceDecl
	stages  []*stageDecl
	sinks   []*Captured
}

type sourceDecl struct {
	gen     Generator
	cfg     SourceConfig
	stage   *stageDecl
	port    int
	network bool // fed by a netio ingest listener instead of gen
}

// stageKind classifies a stage for native-backend translation. The
// zero value (kindOther) marks operators only the simulator executes.
type stageKind int

const (
	kindOther stageKind = iota
	kindPass            // no-op passthrough (source entry, Project)
	kindFilter
	kindWindow
	kindKeyedAgg
	kindCapture
	kindSink
)

type stageDecl struct {
	id    int
	mk    func() engine.Operator
	built engine.Operator
	down  []edge

	// Declarative descriptor consumed by the native backend.
	kind  stageKind
	label string
	col   int // filter column / window timestamp column
	keep  func(uint64) bool
	key   int // keyed-agg grouping column
	val   int // keyed-agg value column
	agg   kpa.AggFactory
	cap   *Captured
}

type edge struct {
	to      *stageDecl
	outPort int
	inPort  int
}

// Stream is a handle to one pipeline stage's output.
type Stream struct {
	p     *Pipeline
	stage *stageDecl
}

// Captured receives a sink's results after Run.
type Captured struct {
	sink *ops.CaptureSink
	// Rows holds (key, value, window) result triples.
	Rows []ops.CapturedRow
	// Records counts result records.
	Records int64
}

// NewPipeline starts an empty pipeline with the given windowing.
func NewPipeline(win WindowSpec) *Pipeline {
	return &Pipeline{win: win}
}

func (p *Pipeline) addStage(mk func() engine.Operator) *stageDecl {
	s := &stageDecl{id: len(p.stages), mk: mk}
	p.stages = append(p.stages, s)
	return s
}

// Source attaches a generator and returns its record stream.
func (p *Pipeline) Source(gen Generator, cfg SourceConfig) Stream {
	entry := p.addStage(func() engine.Operator { return &ops.ProjectOp{} })
	entry.kind = kindPass
	p.sources = append(p.sources, sourceDecl{gen: gen, cfg: cfg, stage: entry})
	return Stream{p: p, stage: entry}
}

// NetworkColumns names the columns of network-fed sources, in order:
// ad_id, ad_type, event_type, user_id, page_id, ip, event_time. The
// timestamp is event_time — column 6, in event-time ticks.
func NetworkColumns() []string {
	return append([]string(nil), netio.WireSchema().Names...)
}

// NetworkTsCol is the timestamp column of network-fed sources.
const NetworkTsCol = 6

// NetworkSource declares a source whose records arrive over TCP from
// external clients (sbx-loadgen, or any speaker of the netio wire
// format) instead of an in-process generator. The stream carries the
// NetworkSchema layout. Pipelines with a network source run on the
// native backend via Serve; cfg only needs WatermarkEvery (the
// watermark refresh cadence in received frames — zero picks 4).
func (p *Pipeline) NetworkSource(cfg SourceConfig) Stream {
	entry := p.addStage(func() engine.Operator { return &ops.ProjectOp{} })
	entry.kind = kindPass
	p.sources = append(p.sources, sourceDecl{cfg: cfg, stage: entry, network: true})
	return Stream{p: p, stage: entry}
}

func (s Stream) then(mk func() engine.Operator) Stream {
	next := s.p.addStage(mk)
	s.stage.down = append(s.stage.down, edge{to: next})
	return Stream{p: s.p, stage: next}
}

// keyedAgg appends a keyed aggregation stage with its native descriptor.
func (s Stream) keyedAgg(label string, keyCol, valCol int, agg kpa.AggFactory, mk func() engine.Operator) Stream {
	next := s.then(mk)
	st := next.stage
	st.kind, st.label, st.key, st.val, st.agg = kindKeyedAgg, label, keyCol, valCol, agg
	return next
}

// Filter keeps records whose column col satisfies keep (ParDo/Filter).
func (s Stream) Filter(label string, col int, keep func(uint64) bool) Stream {
	next := s.then(func() engine.Operator { return &ops.FilterOp{Label: label, Col: col, Keep: keep} })
	st := next.stage
	st.kind, st.label, st.col, st.keep = kindFilter, label, col, keep
	return next
}

// Sample keeps one record in every (ParDo/Sample).
func (s Stream) Sample(col int, every uint64) Stream {
	return s.then(func() engine.Operator { return &ops.SampleOp{Col: col, Every: every} })
}

// Project declares a projection (a no-op with columnar storage, kept
// for pipeline shape fidelity).
func (s Stream) Project(cols ...int) Stream {
	next := s.then(func() engine.Operator { return &ops.ProjectOp{Cols: cols} })
	next.stage.kind = kindPass
	return next
}

// ExternalJoin maps column keyCol through a key-value table (YSB's
// campaign join), writing results back to the records.
func (s Stream) ExternalJoin(label string, keyCol int, table *algo.HashTable) Stream {
	return s.then(func() engine.Operator {
		return &ops.ExternalJoinOp{Label: label, KeyCol: keyCol, Table: table}
	})
}

// Window assigns records to temporal windows by timestamp column.
func (s Stream) Window(tsCol int) Stream {
	next := s.then(func() engine.Operator { return &ops.WindowOp{TsCol: tsCol} })
	st := next.stage
	st.kind, st.col = kindWindow, tsCol
	return next
}

// SumPerKey aggregates value sums per key per window. The input must be
// windowed (call Window first).
func (s Stream) SumPerKey(keyCol, valCol int) Stream {
	return s.keyedAgg("sum", keyCol, valCol, ops.Sum(),
		func() engine.Operator { return ops.NewKeyedAgg("sum", keyCol, valCol, ops.Sum()) })
}

// CountPerKey counts records per key per window.
func (s Stream) CountPerKey(keyCol int) Stream {
	return s.keyedAgg("count", keyCol, keyCol, ops.Count(),
		func() engine.Operator { return ops.NewKeyedAgg("count", keyCol, keyCol, ops.Count()) })
}

// AvgPerKey averages values per key per window.
func (s Stream) AvgPerKey(keyCol, valCol int) Stream {
	return s.keyedAgg("avg", keyCol, valCol, ops.Avg(),
		func() engine.Operator { return ops.NewKeyedAgg("avg", keyCol, valCol, ops.Avg()) })
}

// MedianPerKey computes per-key medians per window.
func (s Stream) MedianPerKey(keyCol, valCol int) Stream {
	return s.keyedAgg("median", keyCol, valCol, ops.Median(),
		func() engine.Operator { return ops.NewKeyedAgg("median", keyCol, valCol, ops.Median()) })
}

// TopKPerKey reports the k-th largest value per key per window.
func (s Stream) TopKPerKey(keyCol, valCol, k int) Stream {
	return s.keyedAgg("topk", keyCol, valCol, ops.TopK(k),
		func() engine.Operator { return ops.NewKeyedAgg("topk", keyCol, valCol, ops.TopK(k)) })
}

// UniqueCountPerKey counts distinct values per key per window.
func (s Stream) UniqueCountPerKey(keyCol, valCol int) Stream {
	return s.keyedAgg("unique", keyCol, valCol, ops.UniqueCount(),
		func() engine.Operator { return ops.NewKeyedAgg("unique", keyCol, valCol, ops.UniqueCount()) })
}

// PercentilePerKey reports the p-th percentile per key per window.
func (s Stream) PercentilePerKey(keyCol, valCol, p int) Stream {
	return s.keyedAgg("pctl", keyCol, valCol, ops.Percentile(p),
		func() engine.Operator { return ops.NewKeyedAgg("pctl", keyCol, valCol, ops.Percentile(p)) })
}

// AvgAll averages one column across each window.
func (s Stream) AvgAll(valCol int) Stream {
	return s.then(func() engine.Operator { return ops.NewAvgAll(valCol) })
}

// PowerGrid runs the DEBS'14-style top-house analysis.
func (s Stream) PowerGrid() Stream {
	return s.then(func() engine.Operator { return ops.NewPowerGrid() })
}

// Join temporally joins two windowed streams by keyCol, carrying valCol
// from both sides.
func (s Stream) Join(other Stream, keyCol, valCol int) Stream {
	if other.p != s.p {
		panic("streambox: joining streams from different pipelines")
	}
	next := s.p.addStage(func() engine.Operator { return ops.NewTemporalJoin(keyCol, valCol) })
	s.stage.down = append(s.stage.down, edge{to: next, inPort: 0})
	other.stage.down = append(other.stage.down, edge{to: next, inPort: 1})
	return Stream{p: s.p, stage: next}
}

// FilterByAvg filters this (windowed) stream by the per-window average
// of the control stream's valCol: records with value above the average
// survive (benchmark 8).
func (s Stream) FilterByAvg(control Stream, valCol int) Stream {
	if control.p != s.p {
		panic("streambox: mixing streams from different pipelines")
	}
	next := s.p.addStage(func() engine.Operator { return ops.NewWindowedFilter(valCol) })
	control.stage.down = append(control.stage.down, edge{to: next, inPort: 0})
	s.stage.down = append(s.stage.down, edge{to: next, inPort: 1})
	return Stream{p: s.p, stage: next}
}

// Union merges two streams.
func (s Stream) Union(other Stream) Stream {
	if other.p != s.p {
		panic("streambox: mixing streams from different pipelines")
	}
	next := s.p.addStage(func() engine.Operator { return &ops.UnionOp{} })
	s.stage.down = append(s.stage.down, edge{to: next, inPort: 0})
	other.stage.down = append(other.stage.down, edge{to: next, inPort: 1})
	return Stream{p: s.p, stage: next}
}

// Apply appends a custom operator (advanced use; op must implement
// engine.Operator).
func (s Stream) Apply(mk func() engine.Operator) Stream {
	return s.then(mk)
}

// Capture terminates the stream, keeping every result record.
func (s Stream) Capture() *Captured {
	c := &Captured{}
	sinkStage := s.p.addStage(func() engine.Operator {
		c.sink = ops.NewCapture()
		return c.sink
	})
	sinkStage.kind, sinkStage.cap = kindCapture, c
	s.stage.down = append(s.stage.down, edge{to: sinkStage})
	s.p.sinks = append(s.p.sinks, c)
	return c
}

// Sink terminates the stream, counting results without retaining them.
func (s Stream) Sink(name string) {
	sinkStage := s.p.addStage(func() engine.Operator { return engine.NewEgressSink(name) })
	sinkStage.kind, sinkStage.label = kindSink, name
	s.stage.down = append(s.stage.down, edge{to: sinkStage})
}

// Run executes the pipeline: for cfg.Duration virtual seconds on the
// simulated backend, or over Rate×Duration records as fast as the
// hardware allows on the native backend.
func Run(p *Pipeline, cfg RunConfig) (Report, error) {
	if len(p.sources) == 0 {
		return Report{}, fmt.Errorf("streambox: pipeline has no sources")
	}
	for _, sd := range p.sources {
		if sd.network {
			return Report{}, fmt.Errorf("streambox: pipelines with a NetworkSource run via Serve, not Run")
		}
	}
	if cfg.Duration <= 0 {
		return Report{}, fmt.Errorf("streambox: run duration must be positive")
	}
	if cfg.Backend == Native {
		return runNative(p, cfg)
	}
	machine := cfg.Machine
	if machine.Cores == 0 {
		machine = memsim.KNLConfig()
	}
	if cfg.Cores > 0 {
		machine = machine.WithCores(cfg.Cores)
	}
	ecfg := engine.Config{
		Machine:        machine,
		Win:            p.win.w,
		Placement:      cfg.Placement,
		UseKPA:         !cfg.NoKPA,
		TargetDelaySec: cfg.TargetDelay,
		Seed:           cfg.Seed,
		RecordSeries:   cfg.RecordSeries,
	}
	e, err := engine.New(ecfg)
	if err != nil {
		return Report{}, err
	}
	// Build operator instances and wire the graph.
	enodes := make([]*engine.Node, len(p.stages))
	for i, st := range p.stages {
		st.built = st.mk()
		enodes[i] = e.AddOperator(st.built)
	}
	for i, st := range p.stages {
		for _, ed := range st.down {
			e.Connect(enodes[i], ed.outPort, enodes[ed.to.id], ed.inPort)
		}
	}
	for _, sd := range p.sources {
		if _, err := e.AddSource(sd.gen, sd.cfg, enodes[sd.stage.id], sd.port); err != nil {
			return Report{}, err
		}
	}
	stats, err := e.Run(cfg.Duration)
	if err != nil {
		return Report{}, err
	}
	for _, c := range p.sinks {
		if c.sink != nil {
			c.Rows = c.sink.Rows
			c.Records = c.sink.Records
		}
	}
	elapsed := e.Sim.Now()
	rep := Report{
		IngestedRecords: stats.IngestedRecords,
		EmittedRecords:  stats.EmittedRecords,
		WindowsClosed:   stats.WindowsClosed,
		AvgDelay:        stats.AvgDelay(),
		MaxDelay:        stats.MaxDelay(),
		PeakHBMBW:       e.Sim.PeakBW(memsim.HBM),
		PeakDRAMBW:      e.Sim.PeakBW(memsim.DRAM),
		Series:          stats.Series,
	}
	if elapsed > 0 {
		rep.Throughput = float64(stats.IngestedRecords) / elapsed
	}
	return rep, nil
}

// runNative translates the declarative pipeline into a native plan and
// executes it on the multicore runtime backend.
func runNative(p *Pipeline, cfg RunConfig) (Report, error) {
	plan, capture, _, err := nativePlan(p, cfg)
	if err != nil {
		return Report{}, err
	}
	rcfg := runtime.Config{
		Workers:        cfg.Workers,
		Machine:        cfg.Machine,
		Seed:           cfg.Seed,
		Capture:        capture != nil,
		SpillDir:       cfg.SpillDir,
		SpillCapacity:  cfg.SpillCapacity,
		PinnedKnob:     cfg.PinnedKnob,
		EvictHighWater: cfg.EvictHighWater,
		EvictLowWater:  cfg.EvictLowWater,
	}
	rep, err := runtime.Run(plan, rcfg)
	if err != nil {
		return Report{}, err
	}
	if capture != nil {
		capture.Rows = capture.Rows[:0]
		for _, r := range rep.Rows {
			capture.Rows = append(capture.Rows, ops.CapturedRow{Key: r.Key, Val: r.Val, Win: r.Win})
		}
		capture.Records = int64(len(capture.Rows))
	}
	return Report{
		Backend:                   Native,
		IngestedRecords:           rep.IngestedRecords,
		Throughput:                rep.Throughput,
		WallSeconds:               rep.Elapsed.Seconds(),
		GCPauseNs:                 rep.GCPauseNs,
		AllocsPerRecord:           rep.AllocsPerRecord,
		EmittedRecords:            rep.EmittedRecords,
		WindowsClosed:             rep.WindowsClosed,
		PaneRuns:                  rep.PaneRuns,
		SharedRunRefs:             rep.SharedRunRefs,
		PeakWindowStateBytes:      rep.PeakWindowStateBytes,
		PeakWindowStateTotalBytes: rep.PeakWindowStateTotalBytes,
		SpilledRuns:               rep.SpilledRuns,
		SpilledBytes:              rep.SpilledBytes,
		SpillLoads:                rep.SpillLoads,
		CtrlDecisions:             rep.CtrlDecisions,
		CloseP99Ns:                rep.CloseP99Nanos,
	}, nil
}

// nativePlan walks the pipeline graph and extracts the linear
// filter* → Window → keyed-agg → capture/sink chain the native backend
// executes, rejecting anything richer with a descriptive error. The
// returned sink name labels results in the live-query store.
func nativePlan(p *Pipeline, cfg RunConfig) (runtime.Plan, *Captured, string, error) {
	fail := func(format string, args ...interface{}) (runtime.Plan, *Captured, string, error) {
		return runtime.Plan{}, nil, "", fmt.Errorf("streambox: native backend: "+format+" (run with Backend: Simulated)", args...)
	}
	if len(p.sources) != 1 {
		return fail("pipelines need exactly one source, have %d", len(p.sources))
	}
	src := p.sources[0]
	plan := runtime.Plan{
		Source: src.cfg,
		Win:    p.win.w,
		TsCol:  -1,
	}
	if !src.network {
		plan.Gen = src.gen
		plan.TotalRecords = int64(src.cfg.Rate * cfg.Duration)
	}
	var capture *Captured
	seenAgg := false
	st := src.stage
	for st != nil {
		switch st.kind {
		case kindPass:
			// no-op
		case kindFilter:
			if seenAgg {
				return fail("filter %q after aggregation is unsupported", st.label)
			}
			plan.Filters = append(plan.Filters, runtime.Filter{Col: st.col, Keep: st.keep})
		case kindWindow:
			if plan.TsCol >= 0 {
				return fail("multiple Window stages are unsupported")
			}
			plan.TsCol = st.col
		case kindKeyedAgg:
			if seenAgg {
				return fail("chained aggregations are unsupported")
			}
			if plan.TsCol < 0 {
				return fail("%s requires a Window stage upstream", st.label)
			}
			seenAgg = true
			plan.Label = st.label
			plan.KeyCol, plan.ValCol, plan.NewAgg = st.key, st.val, st.agg
		case kindCapture, kindSink:
			if !seenAgg {
				return fail("pipelines must aggregate before the sink")
			}
			if len(st.down) != 0 {
				return fail("operators after the sink are unsupported")
			}
			capture = st.cap
			sink := st.label
			if sink == "" {
				sink = "capture"
			}
			return plan, capture, sink, nil
		default:
			return fail("operator %d is not in the native path", st.id)
		}
		switch len(st.down) {
		case 0:
			return fail("pipelines must end in Capture or Sink")
		case 1:
			st = st.down[0].to
		default:
			return fail("fan-out graphs are unsupported")
		}
	}
	return fail("pipelines must end in Capture or Sink")
}

// Server is a pipeline running as a long-lived network service: records
// stream in over the netio wire protocol, windows close as client
// watermarks advance, and live results and metrics are queryable over
// HTTP while the run is in flight.
type Server struct {
	exec    *runtime.Execution
	ingest  *netio.Server
	store   *netio.ResultStore
	capture *Captured
	feed    *netio.Feed
	httpLn  net.Listener
	httpSrv *http.Server

	// Durability state (nil/zero without ServeConfig.WALDir).
	wal     *wal.Log
	winSize wm.Time
	ckStop  chan struct{}
	ckDone  chan struct{}
	ckOnce  sync.Once

	// Recovery facts frozen at startup (RecoverDir only).
	recoveredSessions int64
	replayedFrames    int64
	recoveryNs        int64
}

// Serve starts the pipeline as a network server on the native backend.
// The pipeline must have exactly one NetworkSource, and cfg.Serve must
// name an ingest address. Serve returns once the listeners are live;
// Shutdown stops ingestion, drains, and returns the final report.
func Serve(p *Pipeline, cfg RunConfig) (*Server, error) {
	if cfg.Serve == nil || cfg.Serve.IngestAddr == "" {
		return nil, fmt.Errorf("streambox: Serve needs RunConfig.Serve with an IngestAddr")
	}
	if len(p.sources) != 1 || !p.sources[0].network {
		return nil, fmt.Errorf("streambox: Serve needs a pipeline with exactly one NetworkSource")
	}
	if p.sources[0].cfg.WatermarkEvery <= 0 {
		p.sources[0].cfg.WatermarkEvery = 4
	}
	plan, capture, sink, err := nativePlan(p, cfg)
	if err != nil {
		return nil, err
	}

	// Durability setup: RecoverDir means "this directory holds a
	// previous incarnation's log and checkpoint — restore it first",
	// and implies logging continues into the same directory.
	sc := cfg.Serve
	walDir := sc.WALDir
	recovering := false
	if sc.RecoverDir != "" {
		walDir = sc.RecoverDir
		recovering = true
	}
	var (
		walLog *wal.Log
		ck     *wal.Checkpoint
	)
	if walDir != "" {
		if recovering {
			if ck, err = wal.ReadCheckpoint(walDir); err != nil {
				return nil, err
			}
		}
		walLog, err = wal.Open(wal.Config{
			Dir:          walDir,
			SegmentBytes: sc.WALSegmentBytes,
			SyncInterval: sc.WALSyncInterval,
		})
		if err != nil {
			return nil, err
		}
	}
	var sealedWM wm.Time
	if ck != nil {
		sealedWM = wm.Time(ck.SealedWM)
	}

	feed := netio.NewFeed(netio.WireSchema(), sc.FeedBuffer)
	plan.Feed = feed

	store := netio.NewResultStore(sc.KeepWindows)
	rcfg := runtime.Config{
		Workers:         cfg.Workers,
		Machine:         cfg.Machine,
		Seed:            cfg.Seed,
		Capture:         capture != nil,
		SpillDir:        cfg.SpillDir,
		SpillCapacity:   cfg.SpillCapacity,
		PinnedKnob:      cfg.PinnedKnob,
		EvictHighWater:  cfg.EvictHighWater,
		EvictLowWater:   cfg.EvictLowWater,
		ShedUtilization: sc.ShedUtilization,
		// Windows the checkpoint already sealed are rebuilt by replay
		// but neither re-published nor re-captured — the checkpointed
		// snapshot is the single durable copy.
		SealedBefore: sealedWM,
		WindowSink: func(start, end wm.Time, rows []runtime.Row) {
			out := make([]netio.ResultRow, len(rows))
			for i, r := range rows {
				out[i] = netio.ResultRow{Key: r.Key, Val: r.Val}
			}
			store.Publish(sink, start, end, out)
		},
	}
	exec, err := runtime.Start(plan, rcfg)
	if err != nil {
		if walLog != nil {
			walLog.Close()
		}
		return nil, err
	}
	// One owner for all column memory: wire-side batches draw from the
	// engine's slab allocator, so /metrics occupancy covers them and
	// recycled slabs cycle between the socket and the bundle copier.
	feed.UsePool(exec.MemPool())

	s := &Server{
		exec:    exec,
		store:   store,
		capture: capture,
		feed:    feed,
		wal:     walLog,
		winSize: plan.Win.Size,
	}

	// Recovery proper: restore the checkpoint, replay unsealed frames
	// through the normal feed path, and rebuild the session table —
	// all before the listener opens, so a reconnecting client can only
	// ever observe the fully restored state.
	var restored restoredState
	if recovering {
		t0 := time.Now()
		restored, err = recoverState(walLog, ck, feed, store, plan.Win)
		if err != nil {
			feed.Close()
			exec.Wait()
			walLog.Close()
			return nil, err
		}
		s.recoveryNs = time.Since(t0).Nanoseconds()
		s.recoveredSessions = int64(len(restored.sessions))
		s.replayedFrames = restored.replayed
	}

	// A typed-nil *wal.Log must not reach the interface field, or the
	// server's nil checks would pass and appends would panic.
	var frameLog netio.FrameLog
	if walLog != nil {
		frameLog = walLog
	}
	ingest, err := netio.Listen(sc.IngestAddr, netio.ServerConfig{
		Feed:            feed,
		FrameCredits:    sc.FrameCredits,
		MaxFrameBytes:   sc.MaxFrameBytes,
		MaxVersion:      sc.WireVersion,
		DecodeWorkers:   sc.DecodeWorkers,
		IdleTimeout:     sc.IdleTimeout,
		CursorGrace:     sc.CursorGrace,
		SessionTimeout:  sc.SessionTimeout,
		MaxConns:        sc.MaxConns,
		Faults:          sc.Faults,
		WAL:             frameLog,
		ReapInterval:    sc.ReapInterval,
		RestoreSessions: restored.sessions,
		NextConnID:      restored.nextID,
		Overloaded: func() bool {
			return exec.DRAMUtilization() > runtime.BackpressureUtilization
		},
		ShedPressure: func() bool {
			return exec.MemPressure() > rcfg.ShedThreshold()
		},
	})
	if err != nil {
		feed.Close()
		exec.Wait()
		if walLog != nil {
			walLog.Close()
		}
		return nil, err
	}
	s.ingest = ingest

	// If the pipeline dies (e.g. fatal DRAM exhaustion), close the
	// ingest listener so clients see the connection drop instead of
	// hanging on withheld credits against a dead pipeline. Close is
	// idempotent, so the normal Shutdown path is unaffected.
	go func() {
		<-exec.Done()
		ingest.Close()
	}()

	if walLog != nil {
		s.ckStop = make(chan struct{})
		s.ckDone = make(chan struct{})
		interval := sc.CheckpointInterval
		if interval <= 0 {
			interval = time.Second
		}
		go s.checkpointLoop(interval)
	}

	if sc.HTTPAddr != "" {
		ln, err := net.Listen("tcp", sc.HTTPAddr)
		if err != nil {
			s.ingest.Close()
			s.exec.Wait()
			s.stopCheckpointer()
			if walLog != nil {
				walLog.Close()
			}
			return nil, err
		}
		s.httpLn = ln
		s.httpSrv = &http.Server{Handler: netio.NewHandler(store, s.scrapeMetrics)}
		go s.httpSrv.Serve(ln)
	}
	return s, nil
}

// restoredState is what recovery hands the ingest listener.
type restoredState struct {
	sessions []netio.RestoredSession
	nextID   int64
	replayed int64
}

// recoverState rebuilds the serving state a crash interrupted: the
// checkpoint seeds the result store, the feed's high-water mark and
// every checkpointed session's watermark cursor; then the write-ahead
// log replays every frame feeding a still-unsealed window through the
// normal ingest path. Sessions are reconstructed as the join of the
// checkpoint and the log — a session's durable ack is the max of its
// checkpointed ack and the newest logged frame, and sessions that
// ended for good (clean EOS, expiry) stay ended.
func recoverState(log *wal.Log, ck *wal.Checkpoint, feed *netio.Feed, store *netio.ResultStore, win wm.Windowing) (restoredState, error) {
	var rs restoredState
	type sessInfo struct {
		conn    int64
		lastSeq uint64
		parked  bool
	}
	byToken := make(map[uint64]*sessInfo)
	ended := make(map[uint64]bool)
	cursorSeen := make(map[int64]bool)
	sessionless := make(map[int64]bool)
	var sealedWM uint64
	if ck != nil {
		sealedWM = ck.SealedWM
		rs.nextID = ck.NextConnID
		for _, w := range ck.Windows {
			rows := make([]netio.ResultRow, len(w.Rows))
			for i, r := range w.Rows {
				rows[i] = netio.ResultRow{Key: r.Key, Val: r.Val}
			}
			store.Publish(w.Sink, wm.Time(w.Start), wm.Time(w.End), rows)
		}
		feed.SeedHighTs(ck.HighTs)
		for i := range ck.Sessions {
			cs := &ck.Sessions[i]
			// Floor the restored cursor at the sealed watermark. The
			// checkpointed cursor can sit past the end of a window that
			// was still open (unsealed) at checkpoint time; restoring it
			// verbatim would let the watermark close that window the
			// moment replay delivers its first batch, splitting its
			// aggregate across one partial publish per redelivered
			// frame. Capped at SealedWM, unsealed windows stay open
			// until replay and resumed clients genuinely re-deliver
			// past them, while every window the cap could close early
			// is sealed — suppressed from sink and capture anyway.
			ts := cs.CursorTs
			if ts > ck.SealedWM {
				ts = ck.SealedWM
			}
			feed.RestoreCursor(cs.Conn, ts, cs.Parked)
			cursorSeen[cs.Conn] = true
			byToken[cs.Token] = &sessInfo{conn: cs.Conn, lastSeq: cs.LastSeq, parked: cs.Parked}
			if cs.Conn > rs.nextID {
				rs.nextID = cs.Conn
			}
		}
	}
	_, err := log.ReplayExisting(func(rec *wal.Record) error {
		switch rec.Kind {
		case wal.KindSessionEnd:
			ended[rec.Token] = true
			return nil
		case wal.KindFrame:
		default:
			return nil
		}
		if rec.Conn > rs.nextID {
			rs.nextID = rec.Conn
		}
		if rec.Token != 0 {
			si := byToken[rec.Token]
			if si == nil {
				si = &sessInfo{conn: rec.Conn}
				byToken[rec.Token] = si
			}
			if rec.Seq > si.lastSeq {
				si.lastSeq = rec.Seq
			}
		} else {
			sessionless[rec.Conn] = true
		}
		// Every connection seen in the log gets a cursor even when its
		// frames need no replay, so the watermark keeps waiting for a
		// resumable session's late data.
		if !cursorSeen[rec.Conn] {
			cursorSeen[rec.Conn] = true
			feed.RestoreCursor(rec.Conn, 0, false)
		}
		// A frame only feeds windows ending by MaxTs+Size; when the
		// checkpoint sealed all of them, the frame's effects are
		// already durable in the result snapshot.
		if rec.MaxTs+uint64(win.Size) <= sealedWM {
			return nil
		}
		cols := feed.BorrowCols(rec.NRows)
		rec.CopyCols(cols)
		if !feed.Inject(rec.Conn, cols, rec.MaxTs) {
			return fmt.Errorf("feed shut down during replay")
		}
		rs.replayed++
		return nil
	})
	if err != nil {
		return restoredState{}, fmt.Errorf("streambox: wal replay: %w", err)
	}
	// Cursors that can never see another byte: sessionless connections
	// (their clients cannot resume) and sessions that ended for good.
	// The retire sentinel rides the feed behind the replayed data.
	for conn := range sessionless {
		feed.Retire(conn)
	}
	for token := range ended {
		if si := byToken[token]; si != nil {
			feed.Retire(si.conn)
			delete(byToken, token)
		}
	}
	for token, si := range byToken {
		rs.sessions = append(rs.sessions, netio.RestoredSession{
			Token:   token,
			Conn:    si.conn,
			LastSeq: si.lastSeq,
			Parked:  si.parked,
		})
	}
	return rs, nil
}

// checkpointLoop periodically persists the recovery metadata and
// retires log segments the latest checkpoint makes redundant.
func (s *Server) checkpointLoop(interval time.Duration) {
	defer close(s.ckDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.ckStop:
			return
		case <-t.C:
			s.writeCheckpoint()
		}
	}
}

// writeCheckpoint persists one recovery checkpoint: the sealed
// watermark, the session table joined with its watermark cursors, and
// the sealed result windows. Only after the checkpoint is durable does
// it retire the log segments whose every window it seals.
func (s *Server) writeCheckpoint() error {
	sealedWM := s.exec.SealedWatermark()
	cursors := make(map[int64]netio.CursorState)
	for _, c := range s.feed.Cursors() {
		cursors[c.Conn] = c
	}
	ck := &wal.Checkpoint{
		SealedWM:   uint64(sealedWM),
		HighTs:     s.feed.HighTs(),
		NextConnID: s.ingest.NextID(),
	}
	for _, sess := range s.ingest.SessionSnapshot() {
		st := wal.SessionState{Token: sess.Token, Conn: sess.Conn, LastSeq: sess.LastSeq}
		if c, ok := cursors[sess.Conn]; ok {
			st.CursorTs, st.Parked = c.Ts, c.Parked
		}
		ck.Sessions = append(ck.Sessions, st)
	}
	// Persist sealed windows only: anything newer will be rebuilt from
	// the log on recovery, and persisting it here would double-publish
	// rows when the rebuilt window merges into the restored store.
	for _, w := range s.store.Snapshot() {
		if w.End > sealedWM {
			continue
		}
		ws := wal.WindowState{Sink: w.Sink, Start: uint64(w.Start), End: uint64(w.End)}
		for _, r := range w.Rows {
			ws.Rows = append(ws.Rows, wal.RowState{Key: r.Key, Val: r.Val})
		}
		ck.Windows = append(ck.Windows, ws)
	}
	if err := wal.WriteCheckpoint(s.wal.Dir(), ck); err != nil {
		return err
	}
	if uint64(sealedWM) > uint64(s.winSize) {
		if _, err := s.wal.RetireThrough(uint64(sealedWM) - uint64(s.winSize)); err != nil {
			return err
		}
	}
	return nil
}

// stopCheckpointer stops the checkpoint loop and waits it out; safe to
// call repeatedly and without a WAL.
func (s *Server) stopCheckpointer() {
	if s.ckStop == nil {
		return
	}
	s.ckOnce.Do(func() { close(s.ckStop) })
	<-s.ckDone
}

// scrapeMetrics gathers one /metrics view from the live execution and
// the ingest server.
func (s *Server) scrapeMetrics() netio.Metrics {
	mem := s.exec.MemSnapshot()
	depths := s.exec.QueueDepths()
	m := netio.Metrics{
		Allocs:            mem.Allocs,
		Frees:             mem.Frees,
		AllocFailures:     mem.Failures,
		ColSlabsCached:    mem.ColSlabsCached,
		ColSlabBytesCache: mem.ColSlabBytesCache,
		ColSlabsRecycled:  mem.ColSlabsRecycled,
		QueueDepths:       depths,
		IngestedRecords:   s.exec.Ingested(),
		WindowsClosed:     int64(s.exec.WindowsClosed()),
		Ingest:            s.ingest.Counters(),
		PerConn:           s.ingest.ConnCounters(),
		WindowsPublished:  s.store.Published(),
	}
	for t := 0; t < memsim.NumTiers; t++ {
		m.MemUsed[t] = mem.Tiers[t].Used
		m.MemCapacity[t] = mem.Tiers[t].Capacity
		m.MemUtilization[t] = mem.Tiers[t].Utilization
	}
	m.WindowStateBytes = s.exec.WindowStateBytes()
	m.PaneRuns, m.SharedRunRefs = s.exec.PaneStats()
	m.KLow, m.KHigh = s.exec.KnobState()
	if s.exec.SpillEnabled() {
		m.SpillEnabled = true
		m.SpilledRuns, m.SpilledBytes, m.SpillLoads, m.CtrlDecisions = s.exec.SpillStats()
		m.SpillUsedBytes = s.exec.SpillUsed()
		m.SpillCapacityBytes = mem.Tiers[memsim.Spill].Capacity
	}
	if s.wal != nil {
		ws := s.wal.Stats()
		m.WALEnabled = true
		m.WALAppendedFrames = ws.AppendedFrames
		m.WALAppendedBytes = ws.AppendedBytes
		m.WALSyncs = ws.Syncs
		m.WALFsyncP99Ns = ws.FsyncP99Ns
		m.WALSegmentsActive = ws.SegmentsActive
		m.WALSegmentsRetired = ws.SegmentsRetired
		for _, b := range ws.Fsync {
			le := b.LeNs
			if le == int64(^uint64(0)>>1) {
				le = -1 // netio renders -1 as the +Inf bucket
			}
			m.WALFsync = append(m.WALFsync, netio.FsyncBucket{LeNs: le, Count: b.Count})
		}
		m.RecoveredSessions = s.recoveredSessions
		m.ReplayedFrames = s.replayedFrames
	}
	return m
}

// IngestAddr returns the ingest listener address (useful with ":0").
func (s *Server) IngestAddr() string { return s.ingest.Addr().String() }

// HTTPAddr returns the HTTP listener address, or "" when disabled.
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// WindowResult is one closed window's published results, as served by
// GET /windows and returned by Server.Results.
type WindowResult = netio.WindowResult

// Results returns the live result store (the same data GET /windows
// serves).
func (s *Server) Results() []netio.WindowResult { return s.store.Snapshot() }

// RecoveredSessions reports how many resumable sessions recovery
// restored (0 without ServeConfig.RecoverDir).
func (s *Server) RecoveredSessions() int64 { return s.recoveredSessions }

// ReplayedFrames reports how many logged frames recovery replayed
// through the pipeline.
func (s *Server) ReplayedFrames() int64 { return s.replayedFrames }

// RecoveryNs reports how long recovery took before the listener
// opened, in nanoseconds.
func (s *Server) RecoveryNs() int64 { return s.recoveryNs }

// Shutdown gracefully stops the server: the ingest listener closes,
// open connections are severed, buffered batches drain through the
// pipeline, every remaining window closes, and the final report —
// including network ingest counters — is returned. Safe to call once.
func (s *Server) Shutdown() (Report, error) {
	s.ingest.Close()
	rep, err := s.exec.Wait()
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	var walStats wal.Stats
	if s.wal != nil {
		// The drain pushed the watermark past every window: one final
		// checkpoint seals the complete run, after which the log
		// segments are redundant and a restart recovers from the
		// checkpoint alone.
		s.stopCheckpointer()
		ckErr := s.writeCheckpoint()
		walStats = s.wal.Stats()
		s.wal.Close()
		if ckErr == nil {
			if purgeErr := wal.PurgeSegments(s.wal.Dir()); purgeErr == nil {
				walStats.SegmentsActive = 0
			} else if err == nil {
				err = purgeErr
			}
		} else if err == nil {
			err = ckErr
		}
	}
	if s.capture != nil {
		s.capture.Rows = s.capture.Rows[:0]
		for _, r := range rep.Rows {
			s.capture.Rows = append(s.capture.Rows, ops.CapturedRow{Key: r.Key, Val: r.Val, Win: r.Win})
		}
		s.capture.Records = int64(len(s.capture.Rows))
	}
	ctr := s.ingest.Counters()
	out := Report{
		Backend:                   Native,
		IngestedRecords:           rep.IngestedRecords,
		Throughput:                rep.Throughput,
		WallSeconds:               rep.Elapsed.Seconds(),
		GCPauseNs:                 rep.GCPauseNs,
		AllocsPerRecord:           rep.AllocsPerRecord,
		EmittedRecords:            rep.EmittedRecords,
		WindowsClosed:             rep.WindowsClosed,
		PaneRuns:                  rep.PaneRuns,
		SharedRunRefs:             rep.SharedRunRefs,
		PeakWindowStateBytes:      rep.PeakWindowStateBytes,
		PeakWindowStateTotalBytes: rep.PeakWindowStateTotalBytes,
		SpilledRuns:               rep.SpilledRuns,
		SpilledBytes:              rep.SpilledBytes,
		SpillLoads:                rep.SpillLoads,
		CtrlDecisions:             rep.CtrlDecisions,
		CloseP99Ns:                rep.CloseP99Nanos,
		DroppedRecords:            ctr.DroppedRecords,
		DecodeErrors:              ctr.DecodeErrors,
		ChecksumErrors:            ctr.ChecksumErrors,
		SessionsResumed:           ctr.SessionsResumed,
		DuplicateFrames:           ctr.DuplicateFrames,
		ShedConns:                 ctr.ShedConns,
		ExpiredSessions:           ctr.ExpiredSessions,
		IdleTimeouts:              ctr.IdleTimeouts,
	}
	if s.wal != nil {
		out.WALAppendedFrames = walStats.AppendedFrames
		out.WALSyncs = walStats.Syncs
		out.WALFsyncP99Ns = walStats.FsyncP99Ns
		out.WALSegmentsActive = walStats.SegmentsActive
		out.WALSegmentsRetired = walStats.SegmentsRetired
		out.RecoveredSessions = s.recoveredSessions
		out.ReplayedFrames = s.replayedFrames
		out.RecoveryNs = s.recoveryNs
	}
	return out, err
}

// DrainShutdown is the ordered graceful stop: the ingest listener
// closes immediately (no new connections), in-flight streams get up to
// grace to finish cleanly, then the remaining connections are severed,
// buffered frames drain through the pipeline, every remaining window
// closes, and the final report is returned — the SIGTERM path of
// cmd/sbx-serve.
func (s *Server) DrainShutdown(grace time.Duration) (Report, error) {
	s.ingest.Drain(grace)
	return s.Shutdown()
}
