package streambox_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	streambox "streambox"
	"streambox/internal/netio"
	"streambox/internal/parsefmt"
)

// netPipeline builds the loopback test pipeline: network source,
// windowed on event_time, summing user_id per ad_id.
func netPipeline() (*streambox.Pipeline, *streambox.Captured) {
	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	cap := p.NetworkSource(streambox.SourceConfig{Name: "net"}).
		Window(streambox.NetworkTsCol).
		SumPerKey(0, 3).
		Capture()
	return p, cap
}

// sendPartition streams records j, j+conns, j+2·conns, … of gen — the
// loadgen partitioning — over one pre-dialed client connection. The
// connection must be dialed before any sender streams, so every
// watermark cursor is registered up front (as sbx-loadgen does).
func sendPartition(t *testing.T, c *netio.Client, gen netio.RecordGen, j, conns, total int) {
	t.Helper()
	defer c.Close()
	buf := make([]parsefmt.Record, 0, 256)
	for i := j; i < total; i += conns {
		buf = append(buf, gen.At(uint64(i)))
		if len(buf) == 256 {
			if err := c.Send(buf); err != nil {
				t.Errorf("conn %d: send: %v", j, err)
				return
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if err := c.Send(buf); err != nil {
			t.Errorf("conn %d: send: %v", j, err)
		}
	}
}

// sortedRows canonicalizes captured rows for comparison.
func sortedRows(c *streambox.Captured) []string {
	out := make([]string, 0, len(c.Rows))
	for _, r := range c.Rows {
		out = append(out, fmt.Sprintf("%d/%d=%d", r.Win, r.Key, r.Val))
	}
	sort.Strings(out)
	return out
}

// TestServeLoopbackEquivalence is the acceptance test for the netio
// subsystem: several clients stream a deterministic workload over
// localhost into a serving pipeline, /windows and /metrics answer with
// live data mid-run, and after a graceful drain the per-window results
// equal the same workload run through the in-process generator on the
// native backend.
func TestServeLoopbackEquivalence(t *testing.T) {
	const (
		total = 200_000
		conns = 3
	)
	gen := netio.RecordGen{Keys: 50, WindowRecords: 20_000} // 10 windows, value 1

	p, netCap := netPipeline()
	srv, err := streambox.Serve(p, streambox.RunConfig{
		Backend: streambox.Native,
		Serve:   &streambox.ServeConfig{IngestAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0"},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Dial every connection before any sender streams: each Dial
	// registers a watermark cursor, so no window can close before all
	// partitions have passed it.
	formats := []parsefmt.Format{parsefmt.PB, parsefmt.JSON, parsefmt.Text}
	clients := make([]*netio.Client, conns)
	for j := range clients {
		c, err := netio.Dial(srv.IngestAddr(), netio.ClientConfig{Format: formats[j%len(formats)], FrameRecords: 256})
		if err != nil {
			t.Fatalf("conn %d: dial: %v", j, err)
		}
		clients[j] = c
	}
	start := time.Now()
	var wg sync.WaitGroup
	for j := 0; j < conns; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			sendPartition(t, clients[j], gen, j, conns, total)
		}(j)
	}

	// Live queries while the run is in flight: poll until at least one
	// window has closed and been published, then check both endpoints.
	base := "http://" + srv.HTTPAddr()
	deadline := time.Now().Add(10 * time.Second)
	var wins struct{ Windows []netio.WindowResult }
	for {
		body := httpGet(t, base+"/windows")
		wins.Windows = nil
		if err := json.Unmarshal(body, &wins); err != nil {
			t.Fatalf("/windows JSON: %v", err)
		}
		if len(wins.Windows) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/windows never showed a closed window during the run")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if w := wins.Windows[0]; w.Sink != "capture" || w.End-w.Start != uint64(streambox.Second) {
		t.Fatalf("live window looks wrong: %+v", w)
	}
	metrics := string(httpGet(t, base+"/metrics"))
	for _, want := range []string{
		"streambox_ingest_connections_active",
		"streambox_mempool_used_bytes{tier=\"dram\"}",
		"streambox_windows_closed_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	wg.Wait()
	elapsed := time.Since(start)
	rep, err := srv.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if rep.IngestedRecords != total {
		t.Fatalf("ingested %d records, want %d", rep.IngestedRecords, total)
	}
	if rep.DecodeErrors != 0 || rep.DroppedRecords != 0 {
		t.Fatalf("decode errors %d, dropped %d, want 0/0", rep.DecodeErrors, rep.DroppedRecords)
	}
	t.Logf("loopback: %d records over %d conns in %v (%.0f rec/s)",
		total, conns, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())

	// Ground truth: the identical stream via the in-process generator.
	refP := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	refCap := refP.Source(netio.NewStreamGen(gen), streambox.SourceConfig{
		Name:           "ref",
		Rate:           total,
		BundleRecords:  1000,
		WindowRecords:  20_000,
		WatermarkEvery: 10,
	}).
		Window(streambox.NetworkTsCol).
		SumPerKey(0, 3).
		Capture()
	if _, err := streambox.Run(refP, streambox.RunConfig{Backend: streambox.Native, Duration: 1}); err != nil {
		t.Fatal(err)
	}

	got, want := sortedRows(netCap), sortedRows(refCap)
	if len(got) != len(want) {
		t.Fatalf("network run produced %d rows, generator run %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d differs: network %s, generator %s", i, got[i], want[i])
		}
	}
	if len(got) != 10*50 {
		t.Fatalf("row count %d, want 10 windows × 50 keys", len(got))
	}
}

// TestServeLoopbackEquivalenceColumnar mirrors the loopback acceptance
// test on the columnar wire: clients stream column-major frames through
// the zero-copy receive path, and the per-window results must equal the
// in-process generator run (and, transitively, the row-format runs the
// test above pins). It also checks the columnar-specific observability:
// format-split frame counters and column-slab pool occupancy.
func TestServeLoopbackEquivalenceColumnar(t *testing.T) {
	const (
		total = 200_000
		conns = 3
	)
	gen := netio.RecordGen{Keys: 50, WindowRecords: 20_000} // 10 windows, value 1

	p, netCap := netPipeline()
	srv, err := streambox.Serve(p, streambox.RunConfig{
		Backend: streambox.Native,
		Serve:   &streambox.ServeConfig{IngestAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0"},
	})
	if err != nil {
		t.Fatal(err)
	}

	clients := make([]*netio.Client, conns)
	for j := range clients {
		c, err := netio.Dial(srv.IngestAddr(), netio.ClientConfig{Format: parsefmt.Columnar, FrameRecords: 256})
		if err != nil {
			t.Fatalf("conn %d: dial: %v", j, err)
		}
		if c.Format() != parsefmt.Columnar {
			t.Fatalf("conn %d negotiated %v, want Columnar", j, c.Format())
		}
		clients[j] = c
	}
	var wg sync.WaitGroup
	for j := 0; j < conns; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			c := clients[j]
			defer c.Close()
			// Column-native partition send: fill column buffers straight
			// from the generator, no record materialization.
			cols := make([][]uint64, 7)
			for k := range cols {
				cols[k] = make([]uint64, 0, 256)
			}
			flush := func() bool {
				if err := c.SendColumns(cols); err != nil {
					t.Errorf("conn %d: send: %v", j, err)
					return false
				}
				for k := range cols {
					cols[k] = cols[k][:0]
				}
				return true
			}
			for i := j; i < total; i += conns {
				rc := gen.ColsAt(uint64(i))
				for k := range cols {
					cols[k] = append(cols[k], rc[k])
				}
				if len(cols[0]) == 256 && !flush() {
					return
				}
			}
			if len(cols[0]) > 0 {
				flush()
			}
		}(j)
	}
	wg.Wait()

	// Columnar observability, while connections may still be draining.
	metrics := string(httpGet(t, "http://"+srv.HTTPAddr()+"/metrics"))
	for _, want := range []string{
		`streambox_ingest_format_frames_total{format="columnar"}`,
		"streambox_mempool_colslabs_recycled_total",
		"streambox_ingest_checksum_errors_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	rep, err := srv.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if rep.IngestedRecords != total {
		t.Fatalf("ingested %d records, want %d", rep.IngestedRecords, total)
	}
	if rep.DecodeErrors != 0 || rep.ChecksumErrors != 0 || rep.DroppedRecords != 0 {
		t.Fatalf("decode %d, checksum %d, dropped %d, want all 0",
			rep.DecodeErrors, rep.ChecksumErrors, rep.DroppedRecords)
	}

	// Ground truth: the identical stream via the in-process generator.
	refP := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	refCap := refP.Source(netio.NewStreamGen(gen), streambox.SourceConfig{
		Name:           "ref",
		Rate:           total,
		BundleRecords:  1000,
		WindowRecords:  20_000,
		WatermarkEvery: 10,
	}).
		Window(streambox.NetworkTsCol).
		SumPerKey(0, 3).
		Capture()
	if _, err := streambox.Run(refP, streambox.RunConfig{Backend: streambox.Native, Duration: 1}); err != nil {
		t.Fatal(err)
	}

	got, want := sortedRows(netCap), sortedRows(refCap)
	if len(got) != len(want) {
		t.Fatalf("columnar run produced %d rows, generator run %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d differs: columnar %s, generator %s", i, got[i], want[i])
		}
	}
	if len(got) != 10*50 {
		t.Fatalf("row count %d, want 10 windows × 50 keys", len(got))
	}
}

// TestRunRejectsNetworkSource pins the API seam: network pipelines go
// through Serve.
func TestRunRejectsNetworkSource(t *testing.T) {
	p, _ := netPipeline()
	if _, err := streambox.Run(p, streambox.RunConfig{Backend: streambox.Native, Duration: 1}); err == nil {
		t.Fatal("Run accepted a NetworkSource pipeline")
	}
	if _, err := streambox.Serve(p, streambox.RunConfig{}); err == nil {
		t.Fatal("Serve accepted a config without ServeConfig")
	}
}

func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}
