// Hybrid-memory temporal join: two 20 M rec/s streams joined by key per
// window, comparing software-managed placement against DRAM-only — the
// paper's core claim on a two-input pipeline.
//
//	go run ./examples/hybridjoin
package main

import (
	"fmt"
	"log"

	streambox "streambox"
)

func run(placement streambox.Placement) streambox.Report {
	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	src := func(name string, seed int64) (streambox.Stream, error) {
		cfg := streambox.SourceConfig{
			Name:           name,
			Rate:           2e6,
			NICBandwidth:   2.5e9,
			BundleRecords:  10_000,
			WindowRecords:  200_000,
			WatermarkEvery: 20,
		}
		return p.Source(streambox.KV(streambox.KVConfig{Keys: 1 << 16, Seed: seed}), cfg).Window(2), nil
	}
	left, _ := src("L", 1)
	right, _ := src("R", 2)
	left.Join(right, 0, 1).Sink("joined")
	report, err := streambox.Run(p, streambox.RunConfig{
		Duration:  1.5,
		Placement: placement,
	})
	if err != nil {
		log.Fatal(err)
	}
	return report
}

func main() {
	managed := run(streambox.Managed)
	dram := run(streambox.DRAMOnly)
	fmt.Printf("temporal join, two 2 M rec/s streams, 64-core KNL:\n")
	fmt.Printf("  managed hybrid memory: %.1f M rec/s, avg delay %.0f ms, peak HBM %.0f GB/s\n",
		managed.Throughput/1e6, managed.AvgDelay*1000, managed.PeakHBMBW/1e9)
	fmt.Printf("  DRAM only:             %.1f M rec/s, avg delay %.0f ms, peak DRAM %.0f GB/s\n",
		dram.Throughput/1e6, dram.AvgDelay*1000, dram.PeakDRAMBW/1e9)
	fmt.Printf("  joined result records: %d vs %d\n", managed.EmittedRecords, dram.EmittedRecords)
}
