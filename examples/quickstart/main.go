// Quickstart: the paper's Listing 1 — sum values per key in 1-second
// fixed windows — first on the simulated KNL hybrid-memory machine,
// then on the native multicore backend (real goroutines, real data,
// wall-clock throughput).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	streambox "streambox"
)

// pipeline builds the Listing 1 shape: a synthetic key/value stream,
// windowed by the timestamp column, summed per key.
func pipeline(rate float64) (*streambox.Pipeline, *streambox.Captured) {
	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	src := streambox.SourceConfig{
		Name:           "kv",
		Rate:           rate,
		NICBandwidth:   5e9,
		BundleRecords:  10_000,
		WindowRecords:  1_000_000,
		WatermarkEvery: 100,
	}
	stream := p.Source(streambox.KV(streambox.KVConfig{Keys: 1 << 10, Seed: 1}), src)
	results := stream.Window(2).SumPerKey(0, 1).Capture()
	return p, results
}

func main() {
	// 1. Simulated backend: 2 virtual seconds on the 64-core KNL,
	//    paper-faithful hybrid-memory cost model.
	p, results := pipeline(20e6)
	report, err := streambox.Run(p, streambox.RunConfig{
		Machine:  streambox.KNL(),
		Duration: 2.0,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[simulated] ingested %d records (%.1f M rec/s virtual)\n",
		report.IngestedRecords, report.Throughput/1e6)
	fmt.Printf("[simulated] windows closed: %d, avg output delay %.0f ms\n",
		report.WindowsClosed, report.AvgDelay*1000)
	fmt.Printf("[simulated] peak bandwidth: HBM %.0f GB/s, DRAM %.0f GB/s\n",
		report.PeakHBMBW/1e9, report.PeakDRAMBW/1e9)
	for _, r := range results.Rows[:min(3, len(results.Rows))] {
		fmt.Printf("  window@%d key=%d sum=%d\n", r.Win, r.Key, r.Val)
	}

	// 2. Native backend: the same pipeline on real goroutines — same
	//    record stream, real records/second.
	p2, results2 := pipeline(20e6)
	report2, err := streambox.Run(p2, streambox.RunConfig{
		Backend:  streambox.Native,
		Duration: 0.25, // 5M records, as fast as the hardware allows
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[native]    ingested %d records in %.2f s (%.1f M rec/s real)\n",
		report2.IngestedRecords, report2.WallSeconds, report2.Throughput/1e6)
	fmt.Printf("[native]    windows closed: %d, result records: %d\n",
		report2.WindowsClosed, results2.Records)
	// Native reduce tasks emit concurrently; order the sample rows.
	sort.Slice(results2.Rows, func(i, j int) bool {
		a, b := results2.Rows[i], results2.Rows[j]
		if a.Win != b.Win {
			return a.Win < b.Win
		}
		return a.Key < b.Key
	})
	for _, r := range results2.Rows[:min(3, len(results2.Rows))] {
		fmt.Printf("  window@%d key=%d sum=%d\n", r.Win, r.Key, r.Val)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
