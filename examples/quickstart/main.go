// Quickstart: the paper's Listing 1 — sum values per key in 1-second
// fixed windows — on the simulated KNL hybrid-memory machine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	streambox "streambox"
)

func main() {
	// 1. Declare the pipeline and its windowing.
	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))

	// 2. Attach a source: a synthetic key/value stream offering
	//    20 M records/s over RDMA-class ingress.
	src := streambox.SourceConfig{
		Name:           "kv",
		Rate:           20e6,
		NICBandwidth:   5e9,
		BundleRecords:  10_000,
		WindowRecords:  1_000_000,
		WatermarkEvery: 100,
	}
	stream := p.Source(streambox.KV(streambox.KVConfig{Keys: 1 << 10, Seed: 1}), src)

	// 3. Connect operators: window by the timestamp column, then sum
	//    values per key, capturing results.
	results := stream.Window(2).SumPerKey(0, 1).Capture()

	// 4. Execute on the simulated 64-core KNL for 2 virtual seconds.
	report, err := streambox.Run(p, streambox.RunConfig{
		Machine:  streambox.KNL(),
		Duration: 2.0,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ingested %d records (%.1f M rec/s)\n",
		report.IngestedRecords, report.Throughput/1e6)
	fmt.Printf("windows closed: %d, avg output delay %.0f ms\n",
		report.WindowsClosed, report.AvgDelay*1000)
	fmt.Printf("peak bandwidth: HBM %.0f GB/s, DRAM %.0f GB/s\n",
		report.PeakHBMBW/1e9, report.PeakDRAMBW/1e9)
	fmt.Printf("result records: %d\n", results.Records)
	for _, r := range results.Rows[:min(5, len(results.Rows))] {
		fmt.Printf("  window@%d key=%d sum=%d\n", r.Win, r.Key, r.Val)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
