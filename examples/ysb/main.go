// YSB: the Yahoo streaming benchmark (paper Figure 1a) — filter ad
// views, join ad IDs against the campaign side table held in HBM, and
// count events per campaign per 1-second window.
//
//	go run ./examples/ysb
package main

import (
	"fmt"
	"log"
	"sort"

	streambox "streambox"
	"streambox/internal/ingress"
)

func main() {
	gen := streambox.YSB(streambox.YSBConfig{Ads: 1000, Campaigns: 100, Seed: 7})

	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	src := streambox.SourceConfig{
		Name:           "ysb",
		Rate:           30e6,
		NICBandwidth:   5e9, // 40 Gb/s RDMA
		BundleRecords:  10_000,
		WindowRecords:  1_000_000,
		WatermarkEvery: 100,
	}
	results := p.Source(gen, src).
		Filter("views", ingress.YSBEventType, func(v uint64) bool { return v == ingress.YSBEventView }).
		Project(ingress.YSBAdID, ingress.YSBEventTime).
		ExternalJoin("campaigns", ingress.YSBAdID, gen.CampaignTable()).
		Window(ingress.YSBEventTime).
		CountPerKey(ingress.YSBAdID).
		Capture()

	report, err := streambox.Run(p, streambox.RunConfig{Duration: 2.0})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("YSB: %.1f M rec/s ingested, %d windows, avg delay %.0f ms\n",
		report.Throughput/1e6, report.WindowsClosed, report.AvgDelay*1000)

	// Top campaigns of the first closed window.
	byWin := map[uint64][]row{}
	for _, r := range results.Rows {
		byWin[r.Win] = append(byWin[r.Win], row{r.Key, r.Val})
	}
	var wins []uint64
	for w := range byWin {
		wins = append(wins, w)
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i] < wins[j] })
	if len(wins) > 0 {
		rows := byWin[wins[0]]
		sort.Slice(rows, func(i, j int) bool { return rows[i].count > rows[j].count })
		fmt.Printf("window@%d: top campaigns by views\n", wins[0])
		for i := 0; i < 5 && i < len(rows); i++ {
			fmt.Printf("  campaign %3d: %d views\n", rows[i].campaign, rows[i].count)
		}
	}
}

type row struct {
	campaign uint64
	count    uint64
}
