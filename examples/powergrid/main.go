// Power Grid: the DEBS 2014 grand-challenge pipeline (paper benchmark
// 9) — per window, find the houses with the most smart plugs whose
// average load exceeds the global average.
//
//	go run ./examples/powergrid
package main

import (
	"fmt"
	"log"

	streambox "streambox"
)

func main() {
	p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	src := streambox.SourceConfig{
		Name:           "plugs",
		Rate:           10e6,
		NICBandwidth:   5e9,
		BundleRecords:  10_000,
		WindowRecords:  500_000,
		WatermarkEvery: 50,
	}
	results := p.Source(streambox.PowerGridSource(streambox.PowerGridConfig{
		Houses:  40,
		HotFrac: 0.1,
		Seed:    3,
	}), src).
		Window(2).
		PowerGrid().
		Capture()

	report, err := streambox.Run(p, streambox.RunConfig{Duration: 2.0})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("power grid: %.1f M samples/s, %d windows closed\n",
		report.Throughput/1e6, report.WindowsClosed)
	fmt.Println("houses with the most high-power plugs:")
	seen := map[uint64]bool{}
	for _, r := range results.Rows {
		if seen[r.Win] {
			continue
		}
		seen[r.Win] = true
		fmt.Printf("  window@%d: house %d with %d plugs above the global average\n",
			r.Win, r.Key, r.Val)
	}
}
