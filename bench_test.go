// Benchmarks regenerating each figure of the paper's evaluation at a
// reduced scale (run `go test -bench=Fig -benchtime=1x`; use
// cmd/sbx-bench for paper-scale tables), plus real wall-clock
// benchmarks of the grouping kernels the engine is built on.
package streambox_test

import (
	"math/rand"
	"sort"
	"testing"

	streambox "streambox"
	"streambox/internal/algo"
	"streambox/internal/engine"
	"streambox/internal/experiments"
	"streambox/internal/ingress"
	"streambox/internal/ops"
	"streambox/internal/parsefmt"
	"streambox/internal/runtime"
	"streambox/internal/wm"
)

// benchScale keeps the figure benchmarks to seconds of wall time.
func benchScale() experiments.Scale {
	return experiments.Scale{
		WindowRecords: 500_000,
		BundleRecords: 50_000,
		Specimen:      500,
		Duration:      0.25,
		SearchIters:   2,
	}
}

var benchCores = []int{2, 64}

// BenchmarkFig2GroupBy regenerates Figure 2: GroupBy sort vs hash on
// HBM vs DRAM. Reports HBM-sort throughput at 64 cores.
func BenchmarkFig2GroupBy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig2(experiments.Fig2Config{Pairs: 20_000_000, Cores: benchCores})
		for _, r := range rows {
			if r.Config == "HBM Sort" && r.Cores == 64 {
				b.ReportMetric(r.MPairsSec, "Mpairs/s")
				b.ReportMetric(r.GBSec, "GB/s")
			}
		}
	}
}

// BenchmarkFig7YSB regenerates Figure 7: YSB on StreamBox-HBM vs the
// Flink baseline. Reports the RDMA throughput at 64 cores.
func BenchmarkFig7YSB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig7(benchScale(), benchCores)
		for _, r := range rows {
			if r.System == "StreamBox-HBM KNL RDMA" && r.Cores == 64 {
				b.ReportMetric(r.MRecSec, "Mrec/s")
			}
		}
	}
}

// BenchmarkFig8Pipelines regenerates Figure 8: the nine benchmark
// pipelines at 64 cores. Reports the median throughput.
func BenchmarkFig8Pipelines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig8(benchScale(), []int{64})
		var tputs []float64
		for _, r := range rows {
			tputs = append(tputs, r.MRecSec)
		}
		if len(tputs) > 0 {
			b.ReportMetric(tputs[len(tputs)/2], "median-Mrec/s")
		}
	}
}

// BenchmarkFig9Ablation regenerates Figure 9: placement/KPA ablations
// on TopK Per Key. Reports the NoKPA slowdown factor.
func BenchmarkFig9Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig9(benchScale(), []int{64})
		_, _, noKPA := experiments.Fig9Ratios(rows)
		b.ReportMetric(noKPA, "noKPA-factor")
	}
}

// BenchmarkFig10Balance regenerates Figure 10: the demand-balance knob
// under rising ingestion and delayed watermarks.
func BenchmarkFig10Balance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := experiments.Fig10a(benchScale(), []float64{20, 60})
		experiments.Fig10b(benchScale(), []int{100, 300})
		if len(a) == 2 {
			b.ReportMetric(a[1].KLow, "k_low@60M")
		}
	}
}

// BenchmarkFig11Parsing regenerates Figure 11: ingestion parsing
// throughput per format.
func BenchmarkFig11Parsing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig11(0)
		for _, r := range rows {
			if r.Machine == "KNL" && r.Format == "JSON" {
				b.ReportMetric(r.MRecSec, "json-Mrec/s")
			}
		}
	}
}

// BenchmarkNativeBackend measures the native multicore backend end to
// end on the quickstart workload (KV → Window → SumPerKey): ingest,
// KPA extraction, parallel sort, merge tree and windowed reduction on
// real goroutines. The Mrec/s metric is real wall-clock throughput.
func BenchmarkNativeBackend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
		p.Source(streambox.KV(streambox.KVConfig{Keys: 1 << 10, Seed: 1}),
			streambox.DefaultSource(20e6)).
			Window(2).
			SumPerKey(0, 1).
			Sink("out")
		rep, err := streambox.Run(p, streambox.RunConfig{
			Backend:  streambox.Native,
			Duration: 0.1, // 2M records
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Throughput/1e6, "Mrec/s")
	}
}

// BenchmarkNativePipeline runs the native backend end to end and
// reports the allocator-focused metrics alongside throughput: heap
// allocations per ingested record and accumulated GC pause time. These
// are the figures the mempool slab recycler drives down; run with
// GOGC=off (see ci.yml) to isolate allocator wins from collector
// scheduling. One iteration ingests 2M records.
func BenchmarkNativePipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
		p.Source(streambox.KV(streambox.KVConfig{Keys: 1 << 10, Seed: 1}),
			streambox.DefaultSource(20e6)).
			Window(2).
			SumPerKey(0, 1).
			Sink("out")
		rep, err := streambox.Run(p, streambox.RunConfig{
			Backend:  streambox.Native,
			Duration: 0.1, // 2M records
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Throughput/1e6, "Mrec/s")
		b.ReportMetric(rep.AllocsPerRecord, "allocs/rec")
		b.ReportMetric(float64(rep.GCPauseNs)/1e6, "GCpause-ms")
	}
}

// BenchmarkWindowClose runs the native pipeline with bundles sized so
// every window closes over 16 sorted runs, once with the fused
// range-partitioned merge-reduce (the default close) and once with the
// pairwise merge tree + separate reduce baseline (Config.PairwiseClose).
// The interesting deltas are B/rec (the per-level KPA materializations
// the fused close deletes) and Mrec/s on multicore machines, where the
// close path's one-pass structure frees bandwidth for ingest.
func BenchmarkWindowClose(b *testing.B) {
	const records = 2e6
	for _, mode := range []struct {
		name     string
		pairwise bool
	}{{"fused", false}, {"pairwise", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				plan := runtime.Plan{
					Gen: ingress.NewKV(ingress.KVConfig{Keys: 1 << 10, Seed: 1}),
					Source: engine.SourceConfig{
						Name: "close", Rate: records, BundleRecords: 62_500,
						WindowRecords: 1_000_000, WatermarkEvery: 16,
					},
					Win:          wm.Fixed(1_000_000),
					TotalRecords: int64(records),
					TsCol:        2, KeyCol: 0, ValCol: 1,
					NewAgg: ops.Sum(), Label: "close",
				}
				rep, err := runtime.Run(plan, runtime.Config{PairwiseClose: mode.pairwise})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.Throughput/1e6, "Mrec/s")
				b.ReportMetric(rep.AllocBytesPerRecord, "B/rec")
			}
		})
	}
}

// BenchmarkSlidingPipeline runs the native backend end to end on a
// sliding-window workload at overlap Size/Slide = 8, once with the
// default pane-based shared aggregation (each record extracted and
// sorted once into a gcd(Size,Slide)-wide pane whose sorted run is
// refcounted and shared by all 8 covering windows) and once with the
// Config.DirectSliding duplicate-scatter baseline (every record staged
// and sorted into all 8 windows). The interesting deltas: extract-side
// Mpairs/s (logical (record,window) assignments per second of
// extraction+run-formation worker time — panes deliver the same
// assignments with 8× less staging and radix work) and state-B/rec
// (peak live window-state bytes per record of one window — panes hold
// one copy instead of 8).
func BenchmarkSlidingPipeline(b *testing.B) {
	const (
		records       = 2e6
		windowRecords = 1_000_000
	)
	for _, mode := range []struct {
		name   string
		direct bool
	}{{"pane", false}, {"direct", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				plan := runtime.Plan{
					Gen: ingress.NewKV(ingress.KVConfig{Keys: 1 << 10, Seed: 1}),
					Source: engine.SourceConfig{
						Name: "sliding", Rate: records, BundleRecords: 10_000,
						WindowRecords: windowRecords, WatermarkEvery: 25,
					},
					Win:          wm.Sliding(1_000_000, 125_000), // overlap 8
					TotalRecords: int64(records),
					TsCol:        2, KeyCol: 0, ValCol: 1,
					NewAgg: ops.Sum(), Label: "sliding",
				}
				rep, err := runtime.Run(plan, runtime.Config{DirectSliding: mode.direct})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.Throughput/1e6, "Mrec/s")
				if rep.ExtractNanos > 0 {
					b.ReportMetric(float64(rep.ExtractedPairs)/float64(rep.ExtractNanos)*1e3, "extract-Mpairs/s")
				}
				b.ReportMetric(float64(rep.PeakWindowStateTotalBytes)/windowRecords, "state-B/rec")
			}
		})
	}
}

// BenchmarkFigMerge regenerates the window-close microbenchmark on the
// simulated KNL. Reports the fused-over-pairwise speedup at 64 cores
// on HBM.
func BenchmarkFigMerge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.FigMerge(experiments.FigMergeConfig{
			Pairs: 8_000_000, Runs: 16, Cores: benchCores,
		})
		var fused, pairwise float64
		for _, r := range rows {
			if r.Cores == 64 && r.Config == "HBM Fused" {
				fused = r.MPairsSec
			}
			if r.Cores == 64 && r.Config == "HBM Pairwise" {
				pairwise = r.MPairsSec
			}
		}
		b.ReportMetric(fused, "Mpairs/s")
		if pairwise > 0 {
			b.ReportMetric(fused/pairwise, "speedup")
		}
	}
}

// --- Real kernel benchmarks (wall clock, not simulated). -------------------

func benchPairs(n int) []algo.Pair {
	r := rand.New(rand.NewSource(7))
	out := make([]algo.Pair, n)
	for i := range out {
		out[i] = algo.Pair{Key: r.Uint64(), Ptr: uint64(i)}
	}
	return out
}

// BenchmarkSortPairs measures the single-threaded merge-sort kernel.
func BenchmarkSortPairs(b *testing.B) {
	src := benchPairs(1 << 20)
	buf := make([]algo.Pair, len(src))
	b.SetBytes(int64(len(src)) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		algo.SortPairs(buf)
	}
}

// BenchmarkParallelSortPairs measures the parallel merge-sort kernel
// (the paper's chunk-sort + pairwise-merge structure, real goroutines).
func BenchmarkParallelSortPairs(b *testing.B) {
	src := benchPairs(1 << 22)
	buf := make([]algo.Pair, len(src))
	b.SetBytes(int64(len(src)) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		algo.ParallelSortPairs(buf, 8)
	}
}

// BenchmarkMergePairs measures the two-way merge kernel.
func BenchmarkMergePairs(b *testing.B) {
	a := benchPairs(1 << 19)
	c := benchPairs(1 << 19)
	algo.SortPairs(a)
	algo.SortPairs(c)
	b.SetBytes(int64(len(a)+len(c)) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.MergePairs(a, c)
	}
}

// BenchmarkHashGroup measures the open-addressing hash-grouping
// baseline kernel.
func BenchmarkHashGroup(b *testing.B) {
	pairs := benchPairs(1 << 20)
	for i := range pairs {
		pairs[i].Key %= 1 << 14
	}
	b.SetBytes(int64(len(pairs)) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.HashGroup(pairs)
	}
}

// BenchmarkKPAWidth is the ablation for the "one resident column"
// design choice (paper §4.1): grouping 16-byte key/pointer pairs versus
// moving full-width records, measured on the real sort kernel.
func BenchmarkKPAWidth(b *testing.B) {
	b.Run("pairs-16B", func(b *testing.B) {
		src := benchPairs(1 << 19)
		buf := make([]algo.Pair, len(src))
		b.SetBytes(int64(len(src)) * 16)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(buf, src)
			algo.SortPairs(buf)
		}
	})
	b.Run("records-56B", func(b *testing.B) {
		r := rand.New(rand.NewSource(7))
		src := make([]wideRec, 1<<19)
		for i := range src {
			src[i] = wideRec{key: r.Uint64()}
		}
		buf := make([]wideRec, len(src))
		b.SetBytes(int64(len(src)) * 56)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(buf, src)
			sort.Slice(buf, func(x, y int) bool { return buf[x].key < buf[y].key })
		}
	})
}

type wideRec struct {
	key  uint64
	cols [6]uint64
}

// BenchmarkParseFormats measures the real decode kernels of Fig 11.
func BenchmarkParseFormats(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	recs := make([]parsefmt.Record, 5000)
	for i := range recs {
		recs[i] = parsefmt.Record{
			AdID: r.Uint64() % 1000, EventType: r.Uint64() % 3,
			UserID: r.Uint64() % 100000, IP: r.Uint64(), EventTime: r.Uint64() % 1e6,
		}
	}
	for _, f := range []parsefmt.Format{parsefmt.JSON, parsefmt.PB, parsefmt.Text} {
		data := parsefmt.Encode(f, recs)
		b.Run(f.String(), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := parsefmt.Decode(f, data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
