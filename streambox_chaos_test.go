package streambox_test

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	streambox "streambox"
	"streambox/internal/faultinject"
	"streambox/internal/netio"
	"streambox/internal/parsefmt"
)

// TestChaosLoopbackEquivalence is the fault-tolerance acceptance test:
// the loopback-equivalence workload runs with fault injection on every
// client connection — random resets, partial writes, and silent one-bit
// corruption — while resumable sessions reconnect, replay, and dedupe.
// The per-window results must still be bit-identical to the fault-free
// in-process generator run: no record lost, none double-counted.
func TestChaosLoopbackEquivalence(t *testing.T) {
	const (
		total = 200_000
		conns = 3
	)
	gen := netio.RecordGen{Keys: 50, WindowRecords: 20_000} // 10 windows, value 1

	p, netCap := netPipeline()
	srv, err := streambox.Serve(p, streambox.RunConfig{
		Backend: streambox.Native,
		Serve: &streambox.ServeConfig{
			IngestAddr: "127.0.0.1:0",
			HTTPAddr:   "127.0.0.1:0",
			// Long grace: no cursor may park mid-run, or windows would
			// close early and break equivalence. Reconnects happen in
			// milliseconds; parking is for clients that never return.
			CursorGrace: 30 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Columnar clients only: the columnar frame checksum is what turns
	// injected corruption into a detectable, replayable severance. Each
	// connection gets its own deterministic injector.
	injectors := make([]*faultinject.Injector, conns)
	clients := make([]*netio.Client, conns)
	for j := range clients {
		injectors[j] = faultinject.New(faultinject.Config{
			ResetProb:        0.01,
			PartialWriteProb: 0.005,
			CorruptProb:      0.002,
			Seed:             uint64(j + 1),
		})
		c, err := netio.Dial(srv.IngestAddr(), netio.ClientConfig{
			Format:       parsefmt.Columnar,
			FrameRecords: 256,
			Faults:       injectors[j],
			Reconnect: &netio.ReconnectConfig{
				MaxRetries: 100,
				BaseDelay:  time.Millisecond,
				MaxDelay:   20 * time.Millisecond,
				Seed:       uint64(j + 1),
			},
		})
		if err != nil {
			t.Fatalf("conn %d: dial: %v", j, err)
		}
		if !c.Session() {
			t.Fatalf("conn %d did not negotiate a resumable session", j)
		}
		clients[j] = c
	}
	var wg sync.WaitGroup
	for j := 0; j < conns; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			sendPartition(t, clients[j], gen, j, conns, total)
		}(j)
	}
	wg.Wait()

	var reconnects, replayed, resets, partials, corruptions int64
	for j, c := range clients {
		reconnects += c.Reconnects()
		replayed += c.Replayed()
		fc := injectors[j].Counters()
		resets += fc.Resets
		partials += fc.PartialWrites
		corruptions += fc.Corruptions
	}
	if resets+partials+corruptions == 0 {
		t.Fatal("fault injector fired zero faults; the test exercised nothing")
	}
	if reconnects == 0 {
		t.Fatalf("no reconnects despite %d resets, %d partial writes, %d corruptions",
			resets, partials, corruptions)
	}

	rep, err := srv.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if rep.IngestedRecords != total {
		t.Fatalf("ingested %d records, want exactly %d (loss or duplication under faults)",
			rep.IngestedRecords, total)
	}
	if rep.SessionsResumed < reconnects {
		t.Fatalf("SessionsResumed %d < client reconnects %d", rep.SessionsResumed, reconnects)
	}
	t.Logf("chaos: %d resets, %d partial writes, %d corruptions -> %d reconnects, %d frames replayed, %d dup frames discarded",
		resets, partials, corruptions, reconnects, replayed, rep.DuplicateFrames)

	// Ground truth: the identical stream via the in-process generator,
	// fault-free.
	refP := streambox.NewPipeline(streambox.FixedWindow(streambox.Second))
	refCap := refP.Source(netio.NewStreamGen(gen), streambox.SourceConfig{
		Name:           "ref",
		Rate:           total,
		BundleRecords:  1000,
		WindowRecords:  20_000,
		WatermarkEvery: 10,
	}).
		Window(streambox.NetworkTsCol).
		SumPerKey(0, 3).
		Capture()
	if _, err := streambox.Run(refP, streambox.RunConfig{Backend: streambox.Native, Duration: 1}); err != nil {
		t.Fatal(err)
	}

	got, want := sortedRows(netCap), sortedRows(refCap)
	if len(got) != len(want) {
		t.Fatalf("chaos run produced %d rows, generator run %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d differs under faults: network %s, generator %s", i, got[i], want[i])
		}
	}
	if len(got) != 10*50 {
		t.Fatalf("row count %d, want 10 windows × 50 keys", len(got))
	}
}

// TestHungClientCursorExpiry pins the liveness guarantee end to end: a
// client that goes silent forever is idle-severed, its session cursor
// parked after the grace period so other connections' windows keep
// closing, and finally expired so it cannot resume.
func TestHungClientCursorExpiry(t *testing.T) {
	const total = 10_000
	gen := netio.RecordGen{Keys: 20, WindowRecords: 2_000} // 5 windows

	p, _ := netPipeline()
	srv, err := streambox.Serve(p, streambox.RunConfig{
		Backend: streambox.Native,
		Serve: &streambox.ServeConfig{
			IngestAddr:     "127.0.0.1:0",
			HTTPAddr:       "127.0.0.1:0",
			IdleTimeout:    150 * time.Millisecond,
			CursorGrace:    100 * time.Millisecond,
			SessionTimeout: 400 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The hung client: delivers window 0, then silence forever.
	hung, err := netio.Dial(srv.IngestAddr(), netio.ClientConfig{
		Format:       parsefmt.Columnar,
		FrameRecords: 256,
		Reconnect:    &netio.ReconnectConfig{MaxRetries: 1, BaseDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := hung.Send(gen.Records(0, 1000)); err != nil {
		t.Fatal(err)
	}

	// A healthy connection streams the whole workload and stays open.
	healthy, err := netio.Dial(srv.IngestAddr(), netio.ClientConfig{Format: parsefmt.Columnar, FrameRecords: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := healthy.Send(gen.Records(0, total)); err != nil {
		t.Fatal(err)
	}

	// With the hung cursor sitting in window 0, windows past it can only
	// close once the idle sever + cursor grace have parked it.
	base := "http://" + srv.HTTPAddr()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var wins struct{ Windows []netio.WindowResult }
		if err := json.Unmarshal(httpGet(t, base+"/windows"), &wins); err != nil {
			t.Fatalf("/windows JSON: %v", err)
		}
		closed := false
		for _, w := range wins.Windows {
			if w.Start >= 3*uint64(streambox.Second) {
				closed = true
			}
		}
		if closed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("windows never closed past the hung client's cursor")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The abandoned session then expires outright.
	deadline = time.Now().Add(10 * time.Second)
	for !strings.Contains(string(httpGet(t, base+"/metrics")), "streambox_ingest_sessions_expired_total 1") {
		if time.Now().After(deadline) {
			t.Fatal("hung session never expired")
		}
		time.Sleep(20 * time.Millisecond)
	}

	if err := healthy.Close(); err != nil {
		t.Fatal(err)
	}
	hung.Close() // best effort: its session is gone, an error here is expected

	rep, err := srv.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if rep.IdleTimeouts < 1 {
		t.Fatalf("IdleTimeouts = %d, want >= 1", rep.IdleTimeouts)
	}
	if rep.ExpiredSessions != 1 {
		t.Fatalf("ExpiredSessions = %d, want 1", rep.ExpiredSessions)
	}
	if rep.IngestedRecords != total+1000 {
		t.Fatalf("ingested %d records, want %d", rep.IngestedRecords, total+1000)
	}
}
