package streambox_test

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	streambox "streambox"
	"streambox/internal/netio"
	"streambox/internal/parsefmt"
)

// TestDrainShutdownSealsWAL pins the graceful-stop contract of the
// durability layer: a SIGTERM-style drain with resumable sessions still
// attached mid-stream must flush the write-ahead log, persist one final
// checkpoint that seals the complete run, and purge every log segment —
// the next -recover-dir start recovers from the checkpoint alone. It
// doubles as the goroutine-leak check: after Shutdown returns, the
// session reaper, the WAL sync and retirement tickers, and the
// checkpoint loop must all be gone.
func TestDrainShutdownSealsWAL(t *testing.T) {
	walDir := t.TempDir()
	p, _ := netPipeline()
	srv, err := streambox.Serve(p, streambox.RunConfig{
		Backend: streambox.Native,
		Serve: &streambox.ServeConfig{
			IngestAddr:         "127.0.0.1:0",
			WALDir:             walDir,
			CheckpointInterval: 20 * time.Millisecond,
			ReapInterval:       10 * time.Millisecond,
			CursorGrace:        time.Minute,
			SessionTimeout:     time.Minute,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Two resumable sessions, both mid-stream — frames sent, no EOS —
	// when the drain begins, exactly like live loadgen connections at
	// SIGTERM time.
	gen := netio.RecordGen{Keys: 20, WindowRecords: 2_000}
	clients := make([]*netio.Client, 2)
	for j := range clients {
		c, err := netio.Dial(srv.IngestAddr(), netio.ClientConfig{
			Format:       parsefmt.Columnar,
			FrameRecords: 128,
			WriteTimeout: 500 * time.Millisecond,
			Reconnect:    &netio.ReconnectConfig{MaxRetries: 1, BaseDelay: time.Millisecond},
		})
		if err != nil {
			t.Fatalf("conn %d: dial: %v", j, err)
		}
		if !c.Session() {
			t.Fatalf("conn %d did not negotiate a session", j)
		}
		clients[j] = c
	}
	for j, c := range clients {
		if err := c.Send(gen.Records(uint64(j*1000), uint64(j*1000+512))); err != nil {
			t.Fatalf("conn %d: send: %v", j, err)
		}
	}

	rep, err := srv.DrainShutdown(300 * time.Millisecond)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, c := range clients {
		c.Close() // severed by the drain; errors are expected
	}

	if rep.WALAppendedFrames == 0 {
		t.Error("WALAppendedFrames = 0: session frames never reached the log")
	}
	if rep.WALSyncs == 0 {
		t.Error("WALSyncs = 0: acked frames were never fsynced")
	}
	if rep.WALSegmentsActive != 0 {
		t.Errorf("WALSegmentsActive = %d after drain, want 0", rep.WALSegmentsActive)
	}
	if _, err := os.Stat(filepath.Join(walDir, "checkpoint.ckpt")); err != nil {
		t.Errorf("no final checkpoint after drain: %v", err)
	}
	segs, err := filepath.Glob(filepath.Join(walDir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 0 {
		t.Errorf("%d unsealed segments left after drain: %v", len(segs), segs)
	}

	// Leak check: every background loop the server owns must have
	// exited by the time Shutdown returned. Retry briefly — a loop may
	// be a few instructions from returning when Shutdown's last channel
	// close lands.
	leakers := []string{
		"netio.(*Server).reaper",
		"wal.(*Log).writeLoop",
		"wal.(*Log).tickLoop",
		"streambox.(*Server).checkpointLoop",
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		buf := make([]byte, 1<<20)
		stacks := string(buf[:runtime.Stack(buf, true)])
		var leaked []string
		for _, fn := range leakers {
			if strings.Contains(stacks, fn) {
				leaked = append(leaked, fn)
			}
		}
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines still running after Shutdown: %v\n%s", leaked, stacks)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
